"""The virtual-channel router model.

The paper assumes "a regular 5-stage pipelined router (routing computation
(RC), virtual channel allocation (VCA), switch allocation (SA), switch
traversal (ST) and link traversal (LT))" with 4 VCs per input port. We model
the same stages with RC, VCA and SA each taking one cycle and ST folded into
the link-traversal event (uniform across all compared architectures, so
relative results are preserved while keeping kilo-core simulation tractable
in Python).

Switch allocation is *separable*: a per-input-port round-robin arbiter picks
one candidate VC, then a per-output-port round-robin arbiter picks among the
input-port winners, which is the canonical iSLIP-like single-iteration
allocator DSENT models.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.noc.arbiters import RoundRobinArbiter
from repro.noc.buffers import InputPort, VCState, VirtualChannel
from repro.noc.links import Endpoint, Link

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.packet import Flit, Packet


class RoutingFunction:
    """Topology-supplied routing interface.

    Subclasses (one per topology) implement :meth:`compute` to select the
    output port for a packet at a router, and may override
    :meth:`allowed_vcs` to restrict downstream VC choice for deadlock
    avoidance (e.g. OWN's photonic/wireless VC partitioning).
    """

    def compute(self, router: "Router", packet: "Packet") -> int:
        raise NotImplementedError

    def allowed_vcs(self, router: "Router", out_port: int, packet: "Packet") -> Sequence[int]:
        link = router.out_links[out_port]
        endpoint = link.resolve_endpoint(packet)
        return range(endpoint.num_vcs)

    def hold_for_full(self, router: "Router", out_port: int, packet: "Packet") -> bool:
        """Store-and-forward gate, consulted during route computation.

        Return ``True`` to keep the packet's head parked in its (IDLE)
        input VC until every flit of the packet is buffered at this router;
        each arriving flit re-arms route computation, so the predicate is
        re-evaluated as the packet accumulates. Only honoured when the
        packet can fit the VC (``size_flits <= vc_depth``), and only
        consulted for packets with the ``escaped`` latch set (so the
        common case costs one attribute load). The default is wormhole
        everywhere; OWN's fault-tolerant routing uses this for
        escape-path restarts after mid-flight reconfiguration.
        """
        return False


# Type of the delivery callback the simulator passes into stage_sa:
SendFn = Callable[[Link, Endpoint, "Flit", int, int], None]
CreditFn = Callable[[Endpoint, int, int], None]


class Router:
    """One network router: input VC buffers, output links, allocators.

    Parameters
    ----------
    rid:
        Router id, unique within its network.
    num_vcs, vc_depth:
        Input-port geometry (the paper uses 4 VCs per input port).
    position_mm:
        (x, y) placement on the die; used to derive link lengths.
    attrs:
        Free-form topology metadata (cluster id, tile id, gateway role...).
    """

    __slots__ = (
        "rid",
        "num_vcs",
        "vc_depth",
        "position_mm",
        "attrs",
        "input_ports",
        "input_endpoints",
        "out_links",
        "routing",
        "_in_arbs",
        "_out_arbs",
        "_occupied",
        "_sa_active",
        "_rc_pending",
        "_vca_pending",
        "_wake",
        "_kern",
        "buffer_writes",
        "buffer_reads",
        "xbar_traversals",
        "vca_grants",
        "sa_grants",
        "tracer",
    )

    def __init__(
        self,
        rid: int,
        num_vcs: int = 4,
        vc_depth: int = 4,
        position_mm: Tuple[float, float] = (0.0, 0.0),
        attrs: Optional[dict] = None,
    ) -> None:
        self.rid = rid
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.position_mm = position_mm
        self.attrs: dict = attrs or {}
        self.input_ports: List[InputPort] = []
        self.input_endpoints: List[Endpoint] = []
        self.out_links: List[Optional[Link]] = []
        self.routing: Optional[RoutingFunction] = None
        self._in_arbs: List[RoundRobinArbiter] = []
        self._out_arbs: List[RoundRobinArbiter] = []
        self._occupied: Set[Tuple[int, int]] = set()  # (in_port, vc) with flits
        # Subset of ``_occupied`` that can compete in switch allocation:
        # ACTIVE state *and* at least one buffered flit. Maintained by
        # deliver_flit / stage_vca / _transmit so stage_sa never scans VCs
        # still waiting in RC or VCA.
        self._sa_active: Set[Tuple[int, int]] = set()
        # Stage work sets: (in_port, vc) pairs awaiting route computation /
        # VC allocation. Stages drain these instead of scanning every
        # occupied VC each cycle (active-set scheduling).
        self._rc_pending: Set[Tuple[int, int]] = set()
        self._vca_pending: Set[Tuple[int, int]] = set()
        # Scheduler callback: invoked with ``self`` on the empty->occupied
        # transition so the simulator re-registers this router in its active
        # set. ``None`` when no simulator is attached (unit tests driving
        # stages by hand).
        self._wake: Optional[Callable[["Router"], None]] = None
        # Struct-of-arrays binding (repro.noc.kernels.KernelState): set when
        # a simulator builds its array state block over this network. The
        # stage methods write through to the array mirrors when bound.
        self._kern = None
        # Activity counters for the power model:
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.xbar_traversals = 0
        self.vca_grants = 0
        self.sa_grants = 0
        # Telemetry sink (repro.telemetry.Tracer); None on untraced runs.
        self.tracer = None

    # ------------------------------------------------------------------ #
    # Construction API (used by Network builders)
    # ------------------------------------------------------------------ #

    def add_input_port(self, kind: str = "electrical") -> Endpoint:
        """Create a new input port and return its endpoint handle.

        The endpoint is what upstream links (or the NI) reference for
        credits and VC-busy state.
        """
        index = len(self.input_ports)
        port = InputPort(index, self.num_vcs, self.vc_depth, kind=kind)
        endpoint = Endpoint(
            self, index, self.num_vcs, self.vc_depth, name=f"r{self.rid}.in{index}"
        )
        self.input_ports.append(port)
        self.input_endpoints.append(endpoint)
        self._in_arbs.append(RoundRobinArbiter(self.num_vcs))
        return endpoint

    def add_output_port(self, link: Optional[Link] = None) -> int:
        """Reserve the next output port index; attach ``link`` if given."""
        index = len(self.out_links)
        self.out_links.append(link)
        self._out_arbs.append(RoundRobinArbiter(1))  # resized by finalize()
        return index

    def attach_link(self, out_port: int, link: Link) -> None:
        if self.out_links[out_port] is not None:
            raise ValueError(f"router {self.rid} out port {out_port} already linked")
        self.out_links[out_port] = link

    def finalize(self) -> None:
        """Size per-output arbiters once the port counts are known."""
        for i, link in enumerate(self.out_links):
            if link is None:
                raise ValueError(f"router {self.rid}: output port {i} has no link")
        n_in = max(1, len(self.input_ports))
        self._out_arbs = [RoundRobinArbiter(n_in) for _ in self.out_links]

    @property
    def radix(self) -> int:
        """Router radix as the paper counts it: total attached ports."""
        return max(len(self.input_ports), len(self.out_links))

    # ------------------------------------------------------------------ #
    # Buffer plumbing
    # ------------------------------------------------------------------ #

    def deliver_flit(self, in_port: int, vc: int, flit: "Flit") -> None:
        """Accept a flit arriving from a link (the LT stage completing)."""
        vc_obj = self.input_ports[in_port].vcs[vc]
        # VirtualChannel.push, inlined (one call per flit-hop): credit flow
        # control makes overflow a simulator bug, hence the hard error.
        queue = vc_obj.queue
        if len(queue) >= vc_obj.depth:
            raise RuntimeError(
                f"VC{vc_obj.index} overflow: depth={vc_obj.depth}; "
                "credit accounting is broken"
            )
        queue.append(flit)
        kern = self._kern
        if kern is not None:
            # Plain store of the new depth: cheaper than an ndarray
            # read-modify-write on this per-flit-hop path.
            kern.occ[vc_obj.gslot] = len(queue)
        state = vc_obj.state
        if state is VCState.IDLE:
            # A head flit (or a body flit queued behind an un-routed head)
            # now sits in an IDLE VC: schedule route computation.
            self._rc_pending.add((in_port, vc))
        elif state is VCState.ACTIVE:
            # A body flit caught up with its already-switching packet.
            self._sa_active.add((in_port, vc))
            if kern is not None:
                kern.sa_slots.add(vc_obj.gslot)
        if not self._occupied and self._wake is not None:
            self._wake(self)
        self._occupied.add((in_port, vc))
        self.buffer_writes += 1

    def occupancy(self) -> int:
        """Total buffered flits (used by the deadlock watchdog)."""
        return sum(p.total_occupancy() for p in self.input_ports)

    # ------------------------------------------------------------------ #
    # Pipeline stages (invoked by the Simulator each cycle)
    # ------------------------------------------------------------------ #

    def stage_rc(self, now: int) -> None:
        """Route computation for head flits at the front of IDLE VCs.

        Work arrives via ``_rc_pending`` (populated by :meth:`deliver_flit`
        and by :meth:`_transmit` when a tail departure exposes the next
        packet's head). The downstream endpoint and the admissible VC set
        are resolved here and cached on the VC -- both are functions of
        (router, out_port, packet) only, so a VC that then blocks in VCA
        re-polls the cached candidates instead of re-running the routing
        function every cycle.
        """
        pending = self._rc_pending
        if not pending:
            return
        routing = self.routing
        if routing is None:
            raise RuntimeError(f"router {self.rid} has no routing function")
        self._rc_pending = set()
        input_ports = self.input_ports
        kern = self._kern
        for (ip, iv) in pending if len(pending) == 1 else sorted(pending):
            vc = input_ports[ip].vcs[iv]
            if vc.state is not VCState.IDLE or not vc.queue:
                continue  # stale entry: the VC advanced or drained already
            flit = vc.queue[0]
            if not flit.is_head:
                raise RuntimeError(
                    f"router {self.rid}: non-head flit at front of IDLE VC "
                    f"(in_port={ip}, vc={iv}): {flit!r}"
                )
            packet = flit.packet
            out_port = routing.compute(self, packet)
            if (
                packet.escaped
                and len(vc.queue) < packet.size_flits <= vc.depth
                and routing.hold_for_full(self, out_port, packet)
            ):
                # Store-and-forward hold (escape-path restarts): leave the
                # VC IDLE -- retaining no route state, per the coherence
                # invariant -- until the whole packet is buffered here.
                # deliver_flit re-adds the VC to _rc_pending per flit.
                continue
            vc.out_port = out_port
            link = self.out_links[vc.out_port]
            vc.cand_endpoint = link.resolve_endpoint(packet)
            if not vc.cand_endpoint.is_sink:
                if packet.size_flits > vc.cand_endpoint.vc_depth:
                    # Hoisted from Endpoint.can_accept_packet: silently
                    # waiting on a packet that can never fit would hang.
                    raise ValueError(
                        f"packet of {packet.size_flits} flits can never fit "
                        f"VC depth {vc.cand_endpoint.vc_depth} at "
                        f"{vc.cand_endpoint.name or 'endpoint'}"
                    )
                vc.cand_vcs = tuple(
                    routing.allowed_vcs(self, vc.out_port, packet)
                )
            vc.state = VCState.WAITING_VC
            if kern is not None:
                kern.vc_state[vc.gslot] = 2
            self._vca_pending.add((ip, iv))

    def stage_vca(self, now: int) -> None:
        """Virtual-channel allocation for VCs that completed RC.

        Contention for downstream VCs is granted in ascending
        ``(in_port, vc)`` order -- deterministic by construction, shared by
        the dense reference loop and the array-kernel path alike. (Earlier
        revisions scanned ``_occupied`` in CPython set order, which was
        deterministic only as an implementation accident and impossible to
        reproduce from flat array state.) Candidate endpoint/VC sets were
        cached at RC time; blocked VCs park on the endpoint (see below)
        instead of re-polling every cycle.
        """
        pending = self._vca_pending
        if not pending:
            return
        tracer = self.tracer
        input_ports = self.input_ports
        kern = self._kern
        # Every branch below consumes its key (grant, park, or stale), and
        # nothing in the loop re-arms this router, so swap the set out once
        # instead of discarding per key. Re-arms from earlier phases landed
        # before the snapshot; re-arms from later phases land in the fresh set.
        self._vca_pending = set()
        keys = tuple(pending) if len(pending) == 1 else sorted(pending)
        for key in keys:
            ip, iv = key
            vc = input_ports[ip].vcs[iv]
            if vc.state is not VCState.WAITING_VC:
                continue
            endpoint = vc.cand_endpoint
            if endpoint.is_sink:
                vc.out_vc = 0
                vc.endpoint = endpoint
                vc.state = VCState.ACTIVE
                self.vca_grants += 1
                self._sa_active.add(key)
                if kern is not None:
                    s = vc.gslot
                    kern.vc_state[s] = 3
                    kern.head_link[s] = self.out_links[vc.out_port].index
                    kern.head_credit[s] = -1
                    kern.sa_slots.add(s)
                continue
            packet = vc.queue[0].packet
            # Inlined Endpoint.can_accept_packet (virtual cut-through
            # admission: room for the whole packet); the can-never-fit
            # ValueError is hoisted to RC time via ``vc.cand_vcs``.
            size = packet.size_flits
            vc_busy = endpoint.vc_busy
            credits = endpoint.credits
            short_of_credit = False
            for cand in vc.cand_vcs:
                if not vc_busy[cand]:
                    if credits[cand] >= size:
                        vc_busy[cand] = True  # Endpoint.acquire_vc, inlined
                        vc.out_vc = cand
                        vc.endpoint = endpoint
                        vc.state = VCState.ACTIVE
                        self.vca_grants += 1
                        self._sa_active.add(key)
                        link = self.out_links[vc.out_port]
                        if kern is not None:
                            s = vc.gslot
                            kern.vc_state[s] = 3
                            kern.head_link[s] = link.index
                            kern.head_credit[s] = endpoint.kslot + cand
                            kern.sa_slots.add(s)
                        if endpoint._k is not None:
                            endpoint._k.vc_busy[endpoint.kslot + cand] = True
                        medium = link.medium
                        if medium is not None:
                            link.pending_requests += 1
                            medium.note_request(link)
                            if tracer is not None:
                                tracer.on_medium_request(medium, link, packet, now)
                        break
                    short_of_credit = True
            else:
                # Every candidate is busy or short on credits. Nothing about
                # this decision changes until the candidate endpoint frees a
                # VC (always) or returns a credit (only if some candidate was
                # free but underfunded), so park the request there instead of
                # re-polling every cycle. Both re-arm paths run in earlier
                # phases of the cycle than VCA, so a parked entry is always
                # back in ``_vca_pending`` before any cycle in which it could
                # be granted (bit-identical to dense polling, whose failed
                # re-polls have no side effects).
                if short_of_credit:
                    endpoint.vca_credit_waiters.append((self, key, size))
                else:
                    endpoint.vca_waiters.append((self, key, size))

    def wants_link(self, link: Link, now: int) -> bool:
        """Does any ACTIVE VC here have a flit ready for ``link``?

        Used by the simulator's shared-medium arbitration phase: a router
        "requests the token" when it could transmit immediately were the
        medium granted (flit buffered, VC allocated, downstream credit).
        """
        out_port = link.out_port
        for (ip, iv) in self._occupied:
            vc = self.input_ports[ip].vcs[iv]
            if (
                vc.state is VCState.ACTIVE
                and vc.out_port == out_port
                and vc.queue
                and vc.endpoint.has_credit(vc.out_vc)
            ):
                return True
        return False

    def stage_sa(self, now: int, send_fn: SendFn, credit_fn: CreditFn) -> int:
        """Switch allocation + traversal; returns number of flits moved.

        ``send_fn(link, endpoint, flit, out_vc, now)`` schedules link
        traversal; ``credit_fn(input_endpoint, vc_index, now)`` schedules the
        upstream credit return for the freed buffer slot.

        Hot-path note: the rotating-priority arbiters are inlined here --
        the winner among request set ``R`` with pointer ``p`` over ``n``
        lines is ``argmin_{i in R} (i - p) % n`` and the pointer advances to
        ``winner + 1`` -- which is exactly :meth:`RoundRobinArbiter.grant`
        without materialising a full boolean request vector per port per
        cycle. Eligibility checks (credit, link serialization, medium
        token) are likewise inlined copies of ``Endpoint.has_credit`` /
        ``Link.ready``; stall classification matches ``Link.needs_grant``.
        """
        occ = self._sa_active
        if not occ:
            return 0

        tracer = self.tracer
        input_ports = self.input_ports
        out_links = self.out_links

        # Fast path: exactly one competing VC -- no contention, both
        # arbiters trivially grant it (pointer updates match grant() on a
        # single-request vector); only eligibility needs checking.
        if len(occ) == 1:
            for (ip, iv) in occ:
                break
            vc = input_ports[ip].vcs[iv]
            endpoint = vc.endpoint
            if not (endpoint.is_sink or endpoint.credits[vc.out_vc] > 0):
                if tracer is not None:
                    tracer.on_vc_stall(self, input_ports[ip].kind, "credit", now)
                return 0
            link = out_links[vc.out_port]
            if now < link.busy_until:
                if tracer is not None:
                    tracer.on_vc_stall(self, input_ports[ip].kind, "link", now)
                return 0
            medium = link.medium
            if medium is not None and not (
                medium.holder is link
                and now >= medium.grant_at
                and now >= medium.busy_until
                and now >= medium.blocked_until
            ):
                if tracer is not None:
                    tracer.on_vc_stall(self, input_ports[ip].kind, "token", now)
                elif medium.holder is not link:
                    # Token held elsewhere: nothing changes for this VC
                    # until our link is granted, so park it on the link
                    # (re-armed by SharedMedium.try_grant) instead of
                    # re-polling every cycle. Holder-side timer waits
                    # (arb latency / serialization) resolve within a few
                    # cycles and keep polling.
                    occ.discard((ip, iv))
                    if self._kern is not None:
                        self._kern.sa_slots.discard(vc.gslot)
                    link.sa_token_waiters.append((self, (ip, iv)))
                return 0
            arb = self._in_arbs[ip]
            arb._next = (iv + 1) % arb.n
            arb = self._out_arbs[vc.out_port]
            arb._next = (ip + 1) % arb.n
            self._transmit(now, ip, vc, send_fn, credit_fn)
            return 1

        # --- input-port arbitration: one candidate VC per input port ---- #
        # Indexed by input port so iteration is ascending-port without a
        # sort (matching the reference loop's small-int set order).
        grouped: List[Optional[List[int]]] = [None] * len(input_ports)
        for (ip, iv) in occ:
            bucket = grouped[ip]
            if bucket is None:
                grouped[ip] = [iv]
            else:
                bucket.append(iv)
        winners: List[Tuple[int, VirtualChannel]] = []
        for ip, ivs in enumerate(grouped):
            if ivs is None:
                continue
            port = input_ports[ip]
            port_vcs = port.vcs
            req_ivs: List[int] = []
            for iv in ivs if len(ivs) == 1 else sorted(ivs):
                # _sa_active membership guarantees ACTIVE state and a
                # non-empty queue (maintained by deliver_flit / stage_vca /
                # _transmit), so neither is re-checked here.
                vc = port_vcs[iv]
                endpoint = vc.endpoint
                if not (endpoint.is_sink or endpoint.credits[vc.out_vc] > 0):
                    if tracer is not None:
                        tracer.on_vc_stall(self, port.kind, "credit", now)
                    continue
                link = out_links[vc.out_port]
                if now < link.busy_until:
                    if tracer is not None:
                        tracer.on_vc_stall(self, port.kind, "link", now)
                    continue
                medium = link.medium
                if medium is not None and not (
                    medium.holder is link
                    and now >= medium.grant_at
                    and now >= medium.busy_until
                    and now >= medium.blocked_until
                ):
                    if tracer is not None:
                        tracer.on_vc_stall(self, port.kind, "token", now)
                    elif medium.holder is not link:
                        # See the single-entry path: park until granted.
                        occ.discard((ip, iv))
                        if self._kern is not None:
                            self._kern.sa_slots.discard(vc.gslot)
                        link.sa_token_waiters.append((self, (ip, iv)))
                    continue
                req_ivs.append(iv)
            if not req_ivs:
                continue
            arb = self._in_arbs[ip]
            if len(req_ivs) == 1:
                win = req_ivs[0]
            else:
                nxt, n = arb._next, arb.n
                win, best = -1, arb.n
                for cand in req_ivs:
                    dist = (cand - nxt) % n
                    if dist < best:
                        best, win = dist, cand
            arb._next = (win + 1) % arb.n
            winners.append((ip, port_vcs[win]))

        if not winners:
            return 0

        # --- output-port arbitration among input-port winners ----------- #
        if len(winners) == 1:
            ip, vc = winners[0]
            arb = self._out_arbs[vc.out_port]
            arb._next = (ip + 1) % arb.n
            self._transmit(now, ip, vc, send_fn, credit_fn)
            return 1
        by_out: Dict[int, List[Tuple[int, VirtualChannel]]] = {}
        for ip, vc in winners:
            by_out.setdefault(vc.out_port, []).append((ip, vc))
        moved = 0
        for out_port, contenders in by_out.items():
            arb = self._out_arbs[out_port]
            if len(contenders) == 1:
                ip, vc = contenders[0]
            else:
                nxt, n = arb._next, arb.n
                best = n
                ip, vc = contenders[0]
                for cand_ip, cand_vc in contenders:
                    dist = (cand_ip - nxt) % n
                    if dist < best:
                        best, ip, vc = dist, cand_ip, cand_vc
            arb._next = (ip + 1) % arb.n
            self._transmit(now, ip, vc, send_fn, credit_fn)
            moved += 1
        return moved

    def _transmit(
        self,
        now: int,
        in_port: int,
        vc: VirtualChannel,
        send_fn: SendFn,
        credit_fn: CreditFn,
    ) -> None:
        link = self.out_links[vc.out_port]
        endpoint = vc.endpoint
        queue = vc.queue
        flit = queue.popleft()
        key = (in_port, vc.index)
        kern = self._kern
        if kern is not None:
            kern.occ[vc.gslot] = len(queue)
        if not queue:
            self._occupied.discard(key)
            self._sa_active.discard(key)
            if kern is not None:
                kern.sa_slots.discard(vc.gslot)
        elif flit.is_tail:
            # Next packet's head is now at the front: it must re-run RC/VCA
            # before competing in SA again.
            self._sa_active.discard(key)
            if kern is not None:
                kern.sa_slots.discard(vc.gslot)
        self.buffer_reads += 1
        self.xbar_traversals += 1
        self.sa_grants += 1

        if flit.is_head:
            packet = flit.packet
            packet.hops += 1
            if link.kind == "photonic":
                packet.photonic_hops += 1
            elif link.kind == "wireless":
                packet.wireless_hops += 1
            elif not endpoint.is_sink:
                packet.electrical_hops += 1

        out_vc = vc.out_vc
        if not endpoint.is_sink:
            # Endpoint.take_credit, inlined; SA eligibility just proved
            # credits[out_vc] > 0 this cycle, so no underflow guard needed.
            endpoint.credits[out_vc] -= 1
            if endpoint._k is not None:
                endpoint._k.credits[endpoint.kslot + out_vc] = endpoint.credits[out_vc]
        # Link/medium busy + bit accounting happens inside send_fn so the
        # simulator can apply the configured flit width consistently.
        if flit.is_tail:
            endpoint.release_vc(out_vc)
            vc.release()
            if queue:
                # The departed tail exposed the next packet's head flit:
                # route it this very cycle (RC runs after SA in step()).
                self._rc_pending.add(key)
            medium = link.medium
            if medium is not None:
                link.pending_requests -= 1
                if link.pending_requests <= 0:
                    medium.drop_request(link)
        # Return the freed input-buffer slot upstream:
        credit_fn(self.input_endpoints[in_port], vc.index, now)
        send_fn(link, endpoint, flit, out_vc, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router(rid={self.rid}, radix={self.radix}, attrs={self.attrs})"
