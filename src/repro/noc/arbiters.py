"""Arbiters used by the router pipeline's allocation stages.

The paper assumes a regular 5-stage virtual-channel router (RC, VCA, SA, ST,
LT). The VA and SA stages need fair arbiters; we implement the two classic
ones:

* :class:`RoundRobinArbiter` -- rotating-priority arbiter; strong fairness,
  O(n) per grant. This is what the switch allocator uses per output port.
* :class:`MatrixArbiter` -- least-recently-served matrix arbiter, provided
  both for fidelity with DSENT's allocator model and for the ablation bench
  comparing allocator choices.

Both expose the same ``grant(requests) -> winner_index | None`` interface so
the router can be configured with either.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RoundRobinArbiter:
    """Rotating-priority arbiter over ``n`` requesters.

    After a grant, priority moves to the requester *after* the winner, which
    yields strong fairness (every continuously-requesting input is served
    within ``n`` grants).
    """

    __slots__ = ("n", "_next")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"arbiter needs >= 1 requesters, got {n}")
        self.n = n
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Return the granted requester index, or ``None`` if none request.

        ``requests`` must have length ``n``; entry ``i`` is truthy when
        requester ``i`` wants the resource this cycle.
        """
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for offset in range(self.n):
            idx = (self._next + offset) % self.n
            if requests[idx]:
                self._next = (idx + 1) % self.n
                return idx
        return None

    def peek(self, requests: Sequence[bool]) -> Optional[int]:
        """Like :meth:`grant` but without advancing the priority pointer."""
        for offset in range(self.n):
            idx = (self._next + offset) % self.n
            if requests[idx]:
                return idx
        return None

    def reset(self) -> None:
        self._next = 0


class MatrixArbiter:
    """Least-recently-served matrix arbiter.

    Maintains an upper-triangular precedence matrix ``w[i][j]`` meaning
    requester ``i`` beats requester ``j``. The winner's row is cleared and
    column set, making it the lowest priority for subsequent grants.
    """

    __slots__ = ("n", "_w")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"arbiter needs >= 1 requesters, got {n}")
        self.n = n
        # w[i][j] True means i has precedence over j; initialise to i < j.
        self._w: List[List[bool]] = [[i < j for j in range(n)] for i in range(n)]

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        winner: Optional[int] = None
        for i in range(self.n):
            if not requests[i]:
                continue
            # i wins iff no other requester j has precedence over i.
            beaten = False
            for j in range(self.n):
                if j != i and requests[j] and self._w[j][i]:
                    beaten = True
                    break
            if not beaten:
                winner = i
                break
        if winner is not None:
            row = self._w[winner]
            for j in range(self.n):
                if j != winner:
                    row[j] = False
                    self._w[j][winner] = True
        return winner

    def reset(self) -> None:
        for i in range(self.n):
            for j in range(self.n):
                self._w[i][j] = i < j


def make_arbiter(kind: str, n: int):
    """Factory used by router configuration.

    Parameters
    ----------
    kind:
        ``"round_robin"`` or ``"matrix"``.
    """
    if kind == "round_robin":
        return RoundRobinArbiter(n)
    if kind == "matrix":
        return MatrixArbiter(n)
    raise ValueError(f"unknown arbiter kind {kind!r}")
