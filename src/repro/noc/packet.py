"""Packet and flit data types for the flit-level cycle simulator.

A *packet* is the unit of end-to-end communication between two cores; it is
segmented into *flits* (flow-control digits), the unit of buffer allocation
and link traversal. The paper simulates a standard 5-stage virtual-channel
router, so packets carry the metadata needed by routing (destination core),
deadlock avoidance (VC class restrictions) and statistics (timestamps).

Performance note (per the hpc-parallel guides): these objects live on the
simulator's hottest paths, so both classes use ``__slots__`` and flits hold a
direct reference to their parent packet instead of duplicating fields.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, List, Optional


class FlitKind(enum.IntEnum):
    """Position of a flit within its packet.

    ``HEAD`` carries routing information, ``TAIL`` releases the virtual
    channel; a single-flit packet is ``HEAD_TAIL`` and does both.
    """

    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3

    @property
    def is_head(self) -> bool:
        return self in (FlitKind.HEAD, FlitKind.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitKind.TAIL, FlitKind.HEAD_TAIL)


#: Flag tables indexed by ``FlitKind`` value. ``Flit.__init__`` runs once per
#: flit ever created; the enum properties above allocate a tuple and run two
#: enum comparisons per call, which is measurable at millions of flits.
_KIND_IS_HEAD = (True, False, False, True)
_KIND_IS_TAIL = (False, False, True, True)


class PacketIdAllocator:
    """Instance-scoped packet-id source.

    Every :class:`~repro.noc.simulator.Simulator` owns one and binds it to
    its traffic process, so concurrent in-process simulations allocate
    independent, deterministic id sequences (each starting at 0) instead of
    racing on a process-global counter.
    """

    __slots__ = ("_count",)

    def __init__(self, start: int = 0) -> None:
        self._count = itertools.count(start)

    def next_id(self) -> int:
        return next(self._count)

    def reset(self, start: int = 0) -> None:
        self._count = itertools.count(start)


#: Fallback allocator for packets created outside any simulator (unit tests,
#: manual injection). Simulation-driven packets use the simulator's own
#: allocator via the traffic process.
_default_allocator = PacketIdAllocator()


def reset_packet_ids() -> None:
    """Reset the *default* packet-id counter.

    Only packets created without an explicit allocator draw from the
    default; simulator-bound traffic uses a per-simulation
    :class:`PacketIdAllocator` and needs no reset.
    """
    _default_allocator.reset()


class Packet:
    """A multi-flit message from ``src_core`` to ``dst_core``.

    Parameters
    ----------
    src_core, dst_core:
        Flat core indices (0 .. n_cores-1). Topologies translate these to
        router/port coordinates via their own addressing schemes.
    size_flits:
        Number of flits the packet serialises into (>= 1).
    t_create:
        Cycle at which the traffic generator created the packet (queueing at
        the source NI counts towards latency, as usual for open-loop sims).
    vc_class:
        Optional integer tag restricting which virtual channels the packet
        may use (deadlock-avoidance classes; see ``repro.core.routing``).
        ``None`` means unrestricted.
    allocator:
        :class:`PacketIdAllocator` to draw the packet id from; ``None``
        falls back to the module-level default allocator.
    """

    __slots__ = (
        "pid",
        "src_core",
        "dst_core",
        "size_flits",
        "t_create",
        "t_inject",
        "t_eject",
        "vc_class",
        "hops",
        "wireless_hops",
        "photonic_hops",
        "electrical_hops",
        "measured",
        "escaped",
    )

    def __init__(
        self,
        src_core: int,
        dst_core: int,
        size_flits: int,
        t_create: int,
        vc_class: Optional[int] = None,
        allocator: Optional[PacketIdAllocator] = None,
    ) -> None:
        if size_flits < 1:
            raise ValueError(f"size_flits must be >= 1, got {size_flits}")
        if src_core == dst_core:
            raise ValueError("packet source and destination cores must differ")
        self.pid: int = (allocator or _default_allocator).next_id()
        self.src_core = src_core
        self.dst_core = dst_core
        self.size_flits = size_flits
        self.t_create = t_create
        self.t_inject: Optional[int] = None  # first flit enters the network
        self.t_eject: Optional[int] = None  # tail flit reaches the sink
        self.vc_class = vc_class
        self.hops = 0
        self.wireless_hops = 0
        self.photonic_hops = 0
        self.electrical_hops = 0
        # Injection-epoch tag: set by the stats collector at creation time.
        # ``True`` once the packet was created at/after ``warmup_cycles``;
        # packets born during warmup stay ``False`` even when they complete
        # after it, so the measured window never mixes epochs. ``None`` for
        # packets created outside any collector (manual injection in tests).
        self.measured: Optional[bool] = None
        # One-way latch set by the routing layer when a mid-flight
        # reconfiguration (spare revocation / relay-leg failure) forces the
        # packet off its committed path. Escaped packets are never steered
        # onto spare channels again and restart each remaining ascent
        # store-and-forward (see FaultTolerantOwn256Routing.hold_for_full).
        self.escaped = False

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles (creation to tail ejection).

        Raises
        ------
        RuntimeError
            If the packet has not been ejected yet.
        """
        if self.t_eject is None:
            raise RuntimeError(f"packet {self.pid} not ejected yet")
        return self.t_eject - self.t_create

    def make_flits(self) -> List["Flit"]:
        """Segment the packet into its flit sequence."""
        n = self.size_flits
        if n == 1:
            return [Flit(self, FlitKind.HEAD_TAIL, 0)]
        flits = [Flit(self, FlitKind.HEAD, 0)]
        flits.extend(Flit(self, FlitKind.BODY, i) for i in range(1, n - 1))
        flits.append(Flit(self, FlitKind.TAIL, n - 1))
        return flits

    def iter_flits(self) -> Iterator["Flit"]:
        """Lazily iterate the flit sequence (used by injection queues)."""
        return iter(self.make_flits())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(pid={self.pid}, {self.src_core}->{self.dst_core}, "
            f"size={self.size_flits}, t_create={self.t_create})"
        )


class Flit:
    """A single flow-control digit of a packet.

    Routing state (``out_port``) is written by the head flit's route
    computation and inherited by body/tail flits through the shared input-VC
    state, so flits themselves only need identity fields.

    ``fate`` is written by the fault-injection layer
    (:mod:`repro.faults`) while the flit traverses a faulty link:
    ``None`` (intact), ``"corrupt"`` (CRC fails at the receiver, which
    discards the packet and NACKs) or ``"lost"`` (a dead transceiver --
    the receiver hears nothing, so the sender must time out).
    """

    __slots__ = ("packet", "kind", "seq", "fate", "is_head", "is_tail")

    def __init__(self, packet: Packet, kind: FlitKind, seq: int) -> None:
        self.packet = packet
        self.kind = kind
        self.seq = seq
        self.fate: Optional[str] = None
        # Plain booleans (not properties): these flags are consulted several
        # times per flit per cycle on the switch-allocation hot path. The
        # table lookup avoids the enum-property cost on every construction.
        self.is_head: bool = _KIND_IS_HEAD[kind]
        self.is_tail: bool = _KIND_IS_TAIL[kind]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Flit(pid={self.packet.pid}, {self.kind.name}, seq={self.seq})"
