"""Runtime invariant auditing for the NoC substrate.

The simulator's correctness rests on a handful of conservation laws; this
module checks them against a live network so tests (and debugging sessions)
can assert them at any cycle boundary:

* **flit conservation** — every created flit is buffered, in flight on a
  link, queued at an NI, or already ejected; nothing is lost or duplicated;
* **credit consistency** — for every endpoint, credits + buffered flits +
  in-flight flits == buffer depth, per VC;
* **VC-state coherence** — a non-IDLE VC has routing state; an IDLE VC has
  none; ``vc_busy`` flags at endpoints correspond to packets mid-transfer;
* **medium coherence** — a medium's holder is one of its members, and every
  requester has pending VC-allocated packets.

Checks raise :class:`InvariantViolation` with a precise description;
:func:`audit_network` runs them all and returns a summary dict.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.noc.buffers import VCState

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.network import Network
    from repro.noc.simulator import Simulator


class InvariantViolation(AssertionError):
    """A conservation law of the simulator does not hold."""


def _in_flight_by_endpoint(sim: "Simulator") -> Dict[tuple, int]:
    """Scheduled flit deliveries keyed by (endpoint id, vc)."""
    counts: Dict[tuple, int] = {}
    for events in sim._events.values():
        for ev in events:
            if ev[0] == "flit":
                _, endpoint, vc, _flit = ev
                counts[(id(endpoint), vc)] = counts.get((id(endpoint), vc), 0) + 1
    return counts


def _pending_credits_by_endpoint(sim: "Simulator") -> Dict[tuple, int]:
    """Scheduled credit returns keyed by (endpoint id, vc)."""
    counts: Dict[tuple, int] = {}
    for events in sim._events.values():
        for ev in events:
            if ev[0] == "credit":
                _, endpoint, vc = ev
                counts[(id(endpoint), vc)] = counts.get((id(endpoint), vc), 0) + 1
    return counts


def check_flit_conservation(sim: "Simulator") -> None:
    """created + retransmitted == ejected + buffered + in-flight + NI-queued
    + CRC-dropped.

    On fault-free runs the retransmitted/dropped terms are zero and this is
    the plain conservation law. With a fault layer attached
    (:mod:`repro.faults`), every corrupted or lost flit is recorded in
    ``stats.flits_dropped`` when the receiver discards it, and every replayed
    copy in ``stats.flits_retransmitted`` when the link layer re-serialises
    it -- so the balance still closes exactly at any cycle boundary.
    """
    net = sim.network
    created = sim.stats.flits_created
    ejected = sim.stats.flits_ejected
    # Ejected flits are gone; infer them: available - (everything still here).
    buffered = net.total_occupancy()
    queued = sum(len(ni.queue) for ni in net.interfaces if ni is not None)
    in_flight = sum(
        1
        for events in sim._events.values()
        for ev in events
        if ev[0] == "flit"
    )
    accounted = buffered + queued + in_flight
    available = created + sim.stats.flits_retransmitted - sim.stats.flits_dropped
    if accounted > available:
        raise InvariantViolation(
            f"flit conservation: {accounted} flits present but only "
            f"{available} available (created={created}, "
            f"retransmitted={sim.stats.flits_retransmitted}, "
            f"dropped={sim.stats.flits_dropped})"
        )
    # The remainder must equal the ejected count implied by packet stats.
    implied_ejected = available - accounted
    # Cross-check with the collector when no warmup filtering hides flits.
    if sim.stats.warmup_cycles == 0 and implied_ejected != ejected:
        raise InvariantViolation(
            f"flit conservation: implied ejected {implied_ejected} != "
            f"recorded ejected {ejected}"
        )


def check_credit_consistency(sim: "Simulator") -> None:
    """credits + buffered + in-flight (+ pending credit returns) == depth."""
    net = sim.network
    in_flight = _in_flight_by_endpoint(sim)
    pending_credits = _pending_credits_by_endpoint(sim)
    for router in net.routers:
        for in_port, endpoint in enumerate(router.input_endpoints):
            port = router.input_ports[in_port]
            for vc_idx, vc in enumerate(port.vcs):
                credits = endpoint.credits[vc_idx]
                buffered = len(vc.queue)
                flying = in_flight.get((id(endpoint), vc_idx), 0)
                owed = pending_credits.get((id(endpoint), vc_idx), 0)
                total = credits + buffered + flying + owed
                if total != endpoint.vc_depth:
                    raise InvariantViolation(
                        f"credit consistency at r{router.rid}.in{in_port}.vc{vc_idx}: "
                        f"credits={credits} buffered={buffered} in_flight={flying} "
                        f"owed={owed} != depth={endpoint.vc_depth}"
                    )


def check_vc_state_coherence(net: "Network") -> None:
    """Routing state exists exactly for VCs that are mid-packet."""
    for router in net.routers:
        for port in router.input_ports:
            for vc in port.vcs:
                if vc.state is VCState.IDLE:
                    if vc.out_port is not None or vc.out_vc is not None:
                        raise InvariantViolation(
                            f"r{router.rid}: IDLE VC{vc.index} retains route state"
                        )
                elif vc.state in (VCState.WAITING_VC, VCState.ROUTING):
                    if vc.out_port is None:
                        raise InvariantViolation(
                            f"r{router.rid}: VC{vc.index} in {vc.state.name} "
                            f"without a computed out_port"
                        )
                elif vc.state is VCState.ACTIVE:
                    if vc.out_port is None or vc.out_vc is None:
                        raise InvariantViolation(
                            f"r{router.rid}: ACTIVE VC{vc.index} missing allocation"
                        )


def check_medium_coherence(net: "Network") -> None:
    """Holders are members; requesters have pending packets."""
    for medium in net.mediums:
        if medium.holder is not None and medium.holder not in medium.members:
            raise InvariantViolation(
                f"medium {medium.name}: holder is not a member"
            )
        for link in medium.requesters:
            if link not in medium.member_index:
                raise InvariantViolation(
                    f"medium {medium.name}: requester {link.name} not a member"
                )
            if link.pending_requests <= 0:
                raise InvariantViolation(
                    f"medium {medium.name}: requester {link.name} has no "
                    f"pending packets"
                )


def check_kernel_coherence(sim: "Simulator") -> None:
    """The struct-of-arrays state block agrees with the object model.

    Checks the array mirrors (``occ`` / ``vc_state`` / ``head_*`` /
    ``link_busy`` / medium token state) and the write-through credit/busy
    mirrors against the authoritative object lists, plus the SA work-set
    lockstep (``kern.sa_slots`` == union of every router's ``_sa_active``).

    The kernel round-robin pointers (``in_ptr`` / ``out_ptr``) are
    deliberately *not* compared against the object arbiters: a run drives
    switch allocation through exactly one of the two paths, so only that
    path's pointers advance (path-local state, see ``repro.noc.kernels``).
    """
    k = getattr(sim, "kernels", None)
    if k is None or not k.supported:
        return
    net = sim.network
    sa_expect = set()
    for router in net.routers:
        base = int(k.vslot_base[router.rid])
        nv = router.num_vcs
        for (ip, iv) in router._sa_active:
            sa_expect.add(base + ip * nv + iv)
        for ip, port in enumerate(router.input_ports):
            for iv, vc in enumerate(port.vcs):
                s = base + ip * nv + iv
                if vc.gslot != s:
                    raise InvariantViolation(
                        f"kernel: r{router.rid}.in{ip}.vc{iv} slot "
                        f"{vc.gslot} != layout {s}"
                    )
                if int(k.occ[s]) != len(vc.queue):
                    raise InvariantViolation(
                        f"kernel: occ[{s}]={int(k.occ[s])} != "
                        f"{len(vc.queue)} buffered at r{router.rid}.in{ip}.vc{iv}"
                    )
                if int(k.vc_state[s]) != int(vc.state):
                    raise InvariantViolation(
                        f"kernel: vc_state[{s}]={int(k.vc_state[s])} != "
                        f"{vc.state.name} at r{router.rid}.in{ip}.vc{iv}"
                    )
        for ip, endpoint in enumerate(router.input_endpoints):
            base_ep = base + ip * nv
            if endpoint.kslot != base_ep:
                raise InvariantViolation(
                    f"kernel: endpoint r{router.rid}.in{ip} kslot "
                    f"{endpoint.kslot} != layout {base_ep}"
                )
            if list(endpoint.credits) != k.credits[base_ep : base_ep + nv].tolist():
                raise InvariantViolation(
                    f"kernel: credit mirror drifted at r{router.rid}.in{ip}"
                )
            if list(endpoint.vc_busy) != k.vc_busy[base_ep : base_ep + nv].tolist():
                raise InvariantViolation(
                    f"kernel: vc_busy mirror drifted at r{router.rid}.in{ip}"
                )
    if k.sa_slots != sa_expect:
        raise InvariantViolation(
            f"kernel: sa_slots drifted from router _sa_active sets "
            f"(extra={sorted(k.sa_slots - sa_expect)[:8]}, "
            f"missing={sorted(sa_expect - k.sa_slots)[:8]})"
        )
    for s in k.sa_slots:
        vc = k.slot_vc[s]
        router = k.slot_router[s]
        link = router.out_links[vc.out_port]
        if int(k.head_link[s]) != link.index:
            raise InvariantViolation(
                f"kernel: head_link[{s}]={int(k.head_link[s])} != "
                f"link {link.index} ({link.name})"
            )
        expect = -1 if vc.endpoint.is_sink else vc.endpoint.kslot + vc.out_vc
        if int(k.head_credit[s]) != expect:
            raise InvariantViolation(
                f"kernel: head_credit[{s}]={int(k.head_credit[s])} != {expect}"
            )
    for li, link in enumerate(net.links):
        if int(k.link_busy[li]) != link.busy_until:
            raise InvariantViolation(
                f"kernel: link_busy[{li}]={int(k.link_busy[li])} != "
                f"{link.busy_until} at {link.name}"
            )
    for mi, medium in enumerate(net.mediums):
        holder = -1 if medium.holder is None else medium.holder.index
        if int(k.med_holder[mi]) != holder:
            raise InvariantViolation(
                f"kernel: med_holder[{mi}]={int(k.med_holder[mi])} != "
                f"{holder} at {medium.name}"
            )
        if (
            int(k.med_grant_at[mi]) != medium.grant_at
            or int(k.med_busy[mi]) != medium.busy_until
            or int(k.med_blocked[mi]) != medium.blocked_until
        ):
            raise InvariantViolation(
                f"kernel: medium timer mirrors drifted at {medium.name}"
            )


def audit_network(sim: "Simulator") -> Dict[str, int]:
    """Run every invariant check; return occupancy summary on success."""
    net = sim.network
    check_flit_conservation(sim)
    check_credit_consistency(sim)
    check_vc_state_coherence(net)
    check_medium_coherence(net)
    check_kernel_coherence(sim)
    return {
        "cycle": sim.now,
        "buffered_flits": net.total_occupancy(),
        "ni_queued": sum(len(ni.queue) for ni in net.interfaces if ni is not None),
        "in_flight": sum(
            1 for evs in sim._events.values() for ev in evs if ev[0] == "flit"
        ),
        "media_held": sum(1 for m in net.mediums if m.holder is not None),
        "flits_dropped": sim.stats.flits_dropped,
        "flits_retransmitted": sim.stats.flits_retransmitted,
    }
