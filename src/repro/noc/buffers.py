"""Virtual-channel input buffers and their per-packet control state.

Each router input port owns ``num_vcs`` virtual channels; each VC is a FIFO
of flits plus the classic VC state machine:

``IDLE`` -> (head flit at front) -> ``ROUTING`` (RC stage) ->
``WAITING_VC`` (VA stage) -> ``ACTIVE`` (competing in SA) -> back to ``IDLE``
once the tail flit leaves.

The simulator iterates only over *occupied* VCs (active-set scheduling), so
the VC exposes cheap ``occupied`` checks and the port maintains the set of
VC indices that currently hold flits.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.noc.packet import Flit


class VCState(enum.IntEnum):
    """Virtual-channel allocation state machine."""

    IDLE = 0
    ROUTING = 1
    WAITING_VC = 2
    ACTIVE = 3


class VirtualChannel:
    """One VC FIFO and its control state.

    Parameters
    ----------
    depth:
        Buffer depth in flits. Credit-based flow control guarantees the
        upstream router never overruns this; ``push`` still asserts it as a
        simulator-invariant check.
    """

    __slots__ = (
        "index",
        "depth",
        "queue",
        "state",
        "out_port",
        "out_vc",
        "endpoint",
        "cand_endpoint",
        "cand_vcs",
        "gslot",
        "kern",
    )

    def __init__(self, index: int, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"VC depth must be >= 1, got {depth}")
        self.index = index
        self.depth = depth
        self.queue: Deque["Flit"] = deque()
        self.state: VCState = VCState.IDLE
        # Struct-of-arrays binding (repro.noc.kernels): the global slot id
        # of this VC in the simulator's array state block, and the block
        # itself. ``None`` until a KernelState is built over the network.
        self.gslot: int = -1
        self.kern = None
        # Route decision for the packet currently occupying this VC:
        self.out_port: Optional[int] = None  # output port index at this router
        self.out_vc: Optional[int] = None  # allocated VC at the downstream input
        self.endpoint = None  # repro.noc.links.Endpoint resolved for this packet
        # VCA candidates cached at RC time: both the downstream endpoint and
        # the admissible VC set are static per (router, out_port, packet), so
        # a VC blocked in WAITING_VC re-polls these instead of re-running the
        # routing function every cycle.
        self.cand_endpoint = None
        self.cand_vcs: Optional[tuple] = None

    @property
    def occupied(self) -> bool:
        return bool(self.queue)

    @property
    def free_slots(self) -> int:
        return self.depth - len(self.queue)

    def push(self, flit: "Flit") -> None:
        """Accept a flit from the upstream link.

        Credit flow control should make overflow impossible; an overflow here
        indicates a simulator bug, hence the hard error.
        """
        if len(self.queue) >= self.depth:
            raise RuntimeError(
                f"VC{self.index} overflow: depth={self.depth}; "
                "credit accounting is broken"
            )
        self.queue.append(flit)

    def front(self) -> "Flit":
        return self.queue[0]

    def pop(self) -> "Flit":
        return self.queue.popleft()

    def release(self) -> None:
        """Return to IDLE after the tail flit departs."""
        self.state = VCState.IDLE
        self.out_port = None
        self.out_vc = None
        self.endpoint = None
        self.cand_endpoint = None
        self.cand_vcs = None
        if self.kern is not None:
            self.kern.vc_state[self.gslot] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VC(index={self.index}, state={self.state.name}, "
            f"len={len(self.queue)}/{self.depth})"
        )


class InputPort:
    """A router input port: a bank of virtual channels.

    The port tracks which of its VCs are occupied so the router can skip
    empty ones in the per-cycle loop.
    """

    __slots__ = ("index", "vcs", "kind")

    def __init__(self, index: int, num_vcs: int, vc_depth: int, kind: str = "electrical") -> None:
        if num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
        self.index = index
        self.kind = kind
        self.vcs: List[VirtualChannel] = [VirtualChannel(v, vc_depth) for v in range(num_vcs)]

    def occupied_vcs(self) -> List[VirtualChannel]:
        """VCs currently holding at least one flit."""
        return [vc for vc in self.vcs if vc.queue]

    @property
    def num_vcs(self) -> int:
        return len(self.vcs)

    def total_occupancy(self) -> int:
        return sum(len(vc.queue) for vc in self.vcs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InputPort(index={self.index}, kind={self.kind}, vcs={len(self.vcs)})"
