"""The cycle loop: phase-ordered execution of the whole network.

Each simulated cycle executes, in order:

1. **Deliveries** -- flits whose link traversal completes this cycle enter
   downstream buffers (or eject at sinks); credits return upstream.
2. **Medium arbitration** -- free MWSR/SWMR media grant their token to one
   requesting writer (round-robin, ``arb_latency`` cycles of token flight).
3. **SA/ST** -- every router runs separable switch allocation; winners start
   link traversal.
4. **VCA** then 5. **RC** -- so a head flit arriving at cycle *t* routes at
   *t*, allocates a VC at *t+1* and first competes for the switch at *t+2*:
   a 3-cycle router pipeline, our uniform abstraction of the paper's 5-stage
   router (RC/VCA overlapped with lookahead, SA+ST combined).
6. **Injection** -- NIs move queued flits into local input ports; the
   traffic process creates new packets.

Because every phase runs network-wide before the next begins, results are
independent of router iteration order (output ports belong to exactly one
router; cross-router contention exists only on shared media, resolved in
phase 2).

A deadlock watchdog aborts the run if buffered flits stop moving for a
configurable number of cycles -- misrouted VC partitioning shows up as a
loud error instead of a silent hang.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.links import Endpoint, Link
from repro.noc.network import Network
from repro.noc.packet import Flit, Packet, PacketIdAllocator
from repro.noc.stats import StatsCollector


class SimulationDeadlock(RuntimeError):
    """Raised when buffered flits make no progress for ``watchdog`` cycles."""


class Simulator:
    """Drives a :class:`~repro.noc.network.Network` cycle by cycle.

    Parameters
    ----------
    network:
        A finalized network (builder output).
    traffic:
        Object with ``tick(now) -> list[Packet]``; ``None`` means packets are
        injected manually via :meth:`network.inject_packet`.
    warmup_cycles:
        Statistics warmup (see :class:`repro.noc.stats.StatsCollector`).
    credit_latency:
        Cycles for a credit to travel upstream (1 = next-cycle visibility).
    watchdog:
        Zero-progress cycle budget before :class:`SimulationDeadlock`.
    faults:
        Optional :class:`repro.faults.linklayer.FaultLayer` adding fault
        injection + link-layer retransmission. Its engine runs as an extra
        phase between medium arbitration and switch allocation, and
        ACK/NACK events are delegated to it from the event loop. ``None``
        (the default) leaves the cycle loop untouched.
    tracer:
        Optional :class:`repro.telemetry.Tracer` collecting cycle-level
        events and per-component metrics. ``None`` (or a tracer with
        ``enabled=False``) keeps every hot path telemetry-free beyond a
        single ``is not None`` check per site.
    """

    def __init__(
        self,
        network: Network,
        traffic: Optional[object] = None,
        warmup_cycles: int = 0,
        credit_latency: int = 1,
        watchdog: int = 2000,
        faults: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> None:
        if credit_latency < 1:
            raise ValueError(f"credit_latency must be >= 1, got {credit_latency}")
        self.network = network
        self.traffic = traffic
        self.credit_latency = credit_latency
        self.watchdog = watchdog
        self.now = 0
        self.stats = StatsCollector(network.n_cores, warmup_cycles)
        self._events: Dict[int, List[Tuple]] = {}
        self._last_progress = 0
        self._flit_width = network.flit_width_bits
        self._hooks: List[Callable[["Simulator"], None]] = []
        self._paused_traffic: Optional[object] = None
        self._faults = faults
        #: Per-simulation packet-id source. Bound to the traffic process so
        #: concurrent simulations in one process cannot corrupt each other's
        #: id sequences (ids always start at 0, matching a fresh
        #: ``reset_packet_ids()`` call).
        self.packet_ids = PacketIdAllocator()
        if traffic is not None and getattr(traffic, "allocator", "absent") is None:
            traffic.allocator = self.packet_ids
        if not network._finalized:
            network.finalize()
        # A disabled tracer is indistinguishable from no tracer: hot paths
        # guard on ``self._tracer is not None`` and nothing else.
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        if self._tracer is not None:
            self._tracer.bind(self)
        if faults is not None:
            faults.install(self)

    def add_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked at the end of every cycle.

        Used by adaptive controllers (e.g. the reconfiguration-channel
        manager in :mod:`repro.core.reconfig`) that observe network state
        and adjust policy on epoch boundaries.
        """
        self._hooks.append(hook)

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def _schedule(self, cycle: int, event: Tuple) -> None:
        self._events.setdefault(cycle, []).append(event)

    def _send_fn(self, link: Link, endpoint: Endpoint, flit: Flit, out_vc: int, now: int) -> None:
        link.on_flit_sent(now, flit, self._flit_width)
        if link.fault is not None:
            self._faults.note_send(link, flit, now)
        if self._tracer is not None:
            self._tracer.on_flit_sent(link, flit, now)
        self._schedule(now + link.latency, ("flit", endpoint, out_vc, flit))

    def _credit_fn(self, endpoint: Endpoint, vc: int, now: int) -> None:
        self._schedule(now + self.credit_latency, ("credit", endpoint, vc))

    def _deliver(self, endpoint: Endpoint, vc: int, flit: Flit, now: int) -> None:
        tracer = self._tracer
        if flit.fate is not None:
            # CRC failure / dead transceiver: the receiver discards the flit
            # (repro.faults handles credit return and NACK scheduling).
            self._faults.note_drop(endpoint, vc, flit, now)
            return
        if tracer is not None:
            tracer.on_flit_delivered(endpoint, flit, now)
        if endpoint.is_sink:
            self.stats.on_flit_ejected(now)
            if flit.is_tail:
                flit.packet.t_eject = now
                self.stats.on_packet_ejected(flit.packet, now)
                if tracer is not None:
                    tracer.on_packet_ejected(flit.packet, now)
        else:
            endpoint.router.deliver_flit(endpoint.in_port, vc, flit)

    # ------------------------------------------------------------------ #
    # The cycle
    # ------------------------------------------------------------------ #

    def step(self) -> int:
        """Execute one cycle; return the number of flits that moved."""
        now = self.now
        moved = 0

        # Phase 1: deliveries + credit returns scheduled for this cycle.
        events = self._events.pop(now, None)
        if events:
            for ev in events:
                if ev[0] == "flit":
                    _, endpoint, vc, flit = ev
                    self._deliver(endpoint, vc, flit, now)
                    moved += 1
                elif ev[0] == "credit":
                    _, endpoint, vc = ev
                    endpoint.return_credit(vc)
                else:  # link-layer ACK/NACK arrival ("llack")
                    self._faults.handle_event(ev, now)

        # Phase 2: shared-medium (token) arbitration (event-driven request
        # sets; O(requesters) per free medium, not O(members)).
        tracer = self._tracer
        for medium in self.network.mediums:
            if medium.holder is None and medium.requesters:
                granted = medium.try_grant(now)
                if tracer is not None and granted is not None:
                    tracer.on_token_grant(medium, granted, now)

        # Phase 2.5: fault injection + link-layer retransmission engines.
        # Placed after token arbitration (a freshly granted engine transmits
        # this cycle) and before SA (retransmissions pre-empt new packets by
        # marking the link busy).
        if self._faults is not None:
            moved += self._faults.tick(self, now)

        # Phase 3: switch allocation + traversal.
        send_fn = self._send_fn
        credit_fn = self._credit_fn
        for router in self.network.routers:
            if router._occupied:
                moved += router.stage_sa(now, send_fn, credit_fn)

        # Phases 4 & 5: VC allocation, then route computation.
        for router in self.network.routers:
            if router._occupied:
                router.stage_vca(now)
                router.stage_rc(now)

        # Phase 6: traffic generation + NI injection.
        if self.traffic is not None:
            for packet in self.traffic.tick(now):
                self.stats.on_packet_created(packet)
                if tracer is not None:
                    tracer.on_packet_created(packet, now)
                self.network.inject_packet(packet)
        for ni in self.network.interfaces:
            if ni is not None and ni.queue:
                moved += ni.pump(now)

        # End-of-cycle hooks (adaptive controllers).
        if self._hooks:
            for hook in self._hooks:
                hook(self)

        # Periodic buffer-occupancy sampling (congestion heatmaps). Pure
        # observation -- sampled runs are bit-identical to unsampled ones.
        if tracer is not None and tracer.sample_every:
            if now % tracer.sample_every == 0:
                tracer.on_cycle_sample(now)

        # Watchdog: flits buffered but nothing moved for too long -> deadlock.
        if moved:
            self._last_progress = now
        elif self.network.total_occupancy() and now - self._last_progress > self.watchdog:
            if tracer is not None:
                tracer.on_deadlock(now, self.network.total_occupancy())
            raise SimulationDeadlock(self._deadlock_report(now))

        self.now = now + 1
        return moved

    def _deadlock_report(self, now: int) -> str:
        """Deadlock diagnostics: invariant audit + where the flits sit.

        Everything needed to debug a VC-partitioning mistake lands in the
        exception message: whether a conservation law broke (pointing to a
        simulator bug) or the audit is clean (pointing to a protocol-level
        cycle), plus the per-router occupancy of the stuck flits.
        """
        from repro.noc.invariants import audit_network

        lines = [
            f"{self.network.name}: no progress for {self.watchdog} cycles "
            f"at cycle {now} with {self.network.total_occupancy()} flits buffered"
        ]
        try:
            summary = audit_network(self)
        except AssertionError as exc:
            lines.append(f"invariant audit FAILED: {exc}")
        else:
            lines.append(f"invariant audit clean: {summary}")
        stuck = []
        for router in self.network.routers:
            occ = router.occupancy()
            if occ:
                vcs = []
                for port in router.input_ports:
                    for vc in port.vcs:
                        if vc.queue:
                            front = vc.queue[0]
                            vcs.append(
                                f"in{port.index}.vc{vc.index}[{len(vc.queue)} "
                                f"flits, {vc.state.name}, pid={front.packet.pid}"
                                f"->out{vc.out_port}]"
                            )
                stuck.append(f"  r{router.rid} ({occ} flits): " + ", ".join(vcs))
        shown = stuck[:20]
        lines.append(f"stuck flits by router ({len(stuck)} routers):")
        lines.extend(shown)
        if len(stuck) > len(shown):
            lines.append(f"  ... and {len(stuck) - len(shown)} more routers")
        return "\n".join(lines)

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 50_000) -> bool:
        """Pause traffic and run until the network empties.

        Returns ``True`` if fully drained, ``False`` on hitting the budget.
        The traffic process is *paused*, not discarded: call
        :meth:`resume_traffic` to restore injection after the drain
        checkpoint.
        """
        if self.traffic is not None:
            self._paused_traffic = self.traffic
            self.traffic = None
        tracer = self._tracer
        if tracer is not None:
            tracer.on_drain_start(
                self.now, self.network.total_occupancy(), self._backlog()
            )
        start_ejected = self.stats.packets_ejected
        moved = 0
        drained = False
        for _ in range(max_cycles):
            if not self._pending_work():
                drained = True
                break
            moved += self.step()
        else:
            drained = not self._pending_work()
        if tracer is not None:
            tracer.on_drain_end(
                self.now, moved, self.stats.packets_ejected - start_ejected, drained
            )
        return drained

    def resume_traffic(self) -> Optional[object]:
        """Restore the traffic process paused by :meth:`drain`.

        Returns the active traffic process (``None`` if there was none).
        A traffic object installed manually after the drain wins over the
        paused one.
        """
        if self.traffic is None:
            self.traffic = self._paused_traffic
        self._paused_traffic = None
        if self._tracer is not None:
            self._tracer.on_traffic_resumed(self.now, self.traffic is not None)
        return self.traffic

    def _backlog(self) -> int:
        """Flits queued at NIs but not yet injected into the network."""
        return sum(
            len(ni.queue) for ni in self.network.interfaces if ni is not None
        )

    def _pending_work(self) -> bool:
        if self._events:
            return True
        if self.network.total_occupancy():
            return True
        if self._faults is not None and self._faults.pending_work():
            return True
        return any(ni is not None and ni.queue for ni in self.network.interfaces)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, float]:
        return self.stats.summary(self.now)

    def throughput(self) -> float:
        return self.stats.throughput_flits_per_core_cycle(self.now)

    def mean_latency(self) -> float:
        return self.stats.latency_stats().mean
