"""The cycle loop: phase-ordered execution of the whole network.

Each simulated cycle executes, in order:

1. **Deliveries** -- flits whose link traversal completes this cycle enter
   downstream buffers (or eject at sinks); credits return upstream.
2. **Medium arbitration** -- free MWSR/SWMR media grant their token to one
   requesting writer (round-robin, ``arb_latency`` cycles of token flight).
3. **SA/ST** -- every router runs separable switch allocation; winners start
   link traversal.
4. **VCA** then 5. **RC** -- so a head flit arriving at cycle *t* routes at
   *t*, allocates a VC at *t+1* and first competes for the switch at *t+2*:
   a 3-cycle router pipeline, our uniform abstraction of the paper's 5-stage
   router (RC/VCA overlapped with lookahead, SA+ST combined).
6. **Injection** -- NIs move queued flits into local input ports; the
   traffic process creates new packets.

Because every phase runs network-wide before the next begins, results are
independent of router iteration order (output ports belong to exactly one
router; cross-router contention exists only on shared media, resolved in
phase 2).

**Active-set scheduling.** Routers, media and network interfaces register
into per-cycle work sets only while they hold work (buffered flits, token
requests, queued injections); each phase iterates its active set in sorted
(rid / medium index / core) order, so results are deterministic and
independent of how the sets were populated. When every active set is empty
the network is *quiescent* -- nothing can happen until the next scheduled
event -- and :meth:`Simulator.run` fast-forwards the clock to the earliest
wake source: the next scheduled delivery/credit/ACK, the next fault-campaign
action, the next tracer sampling cycle, or the next traffic injection
(pre-drawn in dense cycle order so the RNG stream is untouched). Passing
``dense=True`` disables only the clock skip; every phase runs the identical
code either way, so the two modes are bit-identical by construction.

A deadlock watchdog aborts the run if buffered flits stop moving for a
configurable number of cycles -- misrouted VC partitioning shows up as a
loud error instead of a silent hang. Cycles with deliveries still scheduled
in the event queue are *not* counted as stalled: a long-latency wireless
link legitimately keeps the network motionless for many cycles while its
flits are in flight.
"""

from __future__ import annotations

import heapq
import os
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.noc.kernels import KernelState
from repro.noc.links import Endpoint, Link, SharedMedium
from repro.noc.network import Network, NetworkInterface
from repro.noc.packet import Flit, Packet, PacketIdAllocator
from repro.noc.router import Router
from repro.noc.stats import StatsCollector

#: Deterministic iteration orders for the active sets (C-level key lookups).
_router_key = attrgetter("rid")
_medium_key = attrgetter("index")
_ni_key = attrgetter("core")


class SimulationDeadlock(RuntimeError):
    """Raised when buffered flits make no progress for ``watchdog`` cycles."""


class Simulator:
    """Drives a :class:`~repro.noc.network.Network` cycle by cycle.

    Parameters
    ----------
    network:
        A finalized network (builder output).
    traffic:
        Object with ``tick(now) -> list[Packet]``; ``None`` means packets are
        injected manually via :meth:`network.inject_packet`.
    warmup_cycles:
        Statistics warmup (see :class:`repro.noc.stats.StatsCollector`).
    credit_latency:
        Cycles for a credit to travel upstream (1 = next-cycle visibility).
    watchdog:
        Zero-progress cycle budget before :class:`SimulationDeadlock`.
    faults:
        Optional :class:`repro.faults.linklayer.FaultLayer` adding fault
        injection + link-layer retransmission. Its engine runs as an extra
        phase between medium arbitration and switch allocation, and
        ACK/NACK events are delegated to it from the event loop. ``None``
        (the default) leaves the cycle loop untouched.
    tracer:
        Optional :class:`repro.telemetry.Tracer` collecting cycle-level
        events and per-component metrics. ``None`` (or a tracer with
        ``enabled=False``) keeps every hot path telemetry-free beyond a
        single ``is not None`` check per site.
    observer:
        Optional :class:`repro.obs.RunObserver` emitting in-flight
        progress heartbeats (cycle, packets injected/ejected, active-set
        size, ETA) onto an observation event bus. Same zero-overhead
        discipline as the tracer -- one ``is not None`` check per stepped
        cycle -- and strictly read-only: observed runs are bit-identical
        to unobserved ones. The observer is *not* a fast-forward wake
        source; its stride samples on the next stepped cycle at or past
        the due point.
    dense:
        ``True`` disables the idle-stretch fast-forward in :meth:`run` /
        :meth:`drain` and steps every cycle densely. Phase execution is
        shared between the modes, so dense runs produce bit-identical
        results -- the flag exists as a debugging fallback and as the
        reference side of the equivalence property tests.
    """

    def __init__(
        self,
        network: Network,
        traffic: Optional[object] = None,
        warmup_cycles: int = 0,
        credit_latency: int = 1,
        watchdog: int = 2000,
        faults: Optional[object] = None,
        tracer: Optional[object] = None,
        dense: bool = False,
        observer: Optional[object] = None,
    ) -> None:
        if credit_latency < 1:
            raise ValueError(f"credit_latency must be >= 1, got {credit_latency}")
        self.network = network
        self.traffic = traffic
        self.credit_latency = credit_latency
        self.watchdog = watchdog
        self.dense = dense
        self.now = 0
        self.stats = StatsCollector(network.n_cores, warmup_cycles)
        self._events: Dict[int, List[Tuple]] = {}
        #: Min-heap over the keys of ``_events``; stale entries (cycles whose
        #: bucket was already consumed) are dropped lazily on inspection.
        self._event_cycles: List[int] = []
        self._last_progress = 0
        # Active sets: components registered here have (potential) work this
        # cycle. Wake callbacks installed below re-register components on
        # their empty->non-empty transitions; the cycle loop prunes drained
        # entries as it visits them.
        self._active_routers: Set[Router] = set()
        self._active_media: Set[SharedMedium] = set()
        self._active_nis: Set[NetworkInterface] = set()
        wake_router = self._active_routers.add
        for router in network.routers:
            router._wake = wake_router
            if router._occupied:
                wake_router(router)
        wake_medium = self._active_media.add
        for idx, medium in enumerate(network.mediums):
            if medium.index < 0:
                medium.index = idx  # media registered outside Network helpers
            medium._wake = wake_medium
            if medium.requesters:
                wake_medium(medium)
        wake_ni = self._active_nis.add
        for ni in network.interfaces:
            if ni is not None:
                ni._wake = wake_ni
                if ni.queue:
                    wake_ni(ni)
        self._flit_width = network.flit_width_bits
        self._hooks: List[Callable[["Simulator"], None]] = []
        #: True while every registered hook advertises its epoch boundaries
        #: via ``next_wake`` (vacuously true with no hooks) -- the condition
        #: for keeping idle fast-forward enabled alongside hooks.
        self._hooks_schedulable = True
        self._paused_traffic: Optional[object] = None
        self._faults = faults
        #: Per-simulation packet-id source. Bound to the traffic process so
        #: concurrent simulations in one process cannot corrupt each other's
        #: id sequences (ids always start at 0, matching a fresh
        #: ``reset_packet_ids()`` call).
        self.packet_ids = PacketIdAllocator()
        if traffic is not None and getattr(traffic, "allocator", "absent") is None:
            traffic.allocator = self.packet_ids
        if not network._finalized:
            network.finalize()
        # A disabled tracer is indistinguishable from no tracer: hot paths
        # guard on ``self._tracer is not None`` and nothing else.
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        # Struct-of-arrays state block (repro.noc.kernels): authoritative
        # credit/busy arrays plus per-VC / link / medium mirrors, bound into
        # the object model. Built in both modes (telemetry and invariants
        # read it); the kernel SA sweep replaces the per-router object scan
        # only on the fast untraced path -- ``dense=True`` keeps the object
        # loop as the reference implementation, and REPRO_NOC_KERNELS=0
        # forces the object path as an escape hatch.
        self.kernels = KernelState.build(network)
        self._sa_kernel = (
            not dense
            and self._tracer is None
            and self.kernels.supported
            and os.environ.get("REPRO_NOC_KERNELS", "1") != "0"
        )
        if self._tracer is not None:
            self._tracer.bind(self)
        # Observation sampler (repro.obs): read-only progress heartbeats,
        # guarded exactly like the tracer -- a disabled observer is
        # indistinguishable from none.
        self._observer = (
            observer
            if (observer is not None and getattr(observer, "enabled", True))
            else None
        )
        if self._observer is not None:
            self._observer.bind(self)
        if faults is not None:
            faults.install(self)

    def add_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Register a callable invoked at the end of every cycle.

        Used by adaptive controllers (e.g. the reconfiguration-channel
        manager in :mod:`repro.core.reconfig` and the control plane in
        :mod:`repro.control`) that observe network state and adjust policy
        on epoch boundaries.

        A hook that acts only on epoch boundaries may advertise them by
        exposing ``next_wake(now) -> Optional[int]`` (the earliest cycle
        >= ``now`` at which it must observe a stepped cycle). When *every*
        registered hook does, idle fast-forward stays enabled and the
        boundaries become scheduled wake sources -- the clock can never
        jump over a control epoch. A hook without ``next_wake`` forces
        dense stepping (it might act on any cycle).
        """
        self._hooks.append(hook)
        self._hooks_schedulable = all(
            hasattr(h, "next_wake") for h in self._hooks
        )

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def _schedule(self, cycle: int, event: Tuple) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [event]
            heapq.heappush(self._event_cycles, cycle)
        else:
            bucket.append(event)

    def _next_event_cycle(self) -> Optional[int]:
        """Earliest cycle holding scheduled events (lazy heap cleanup)."""
        heap = self._event_cycles
        events = self._events
        while heap:
            cycle = heap[0]
            if cycle in events:
                return cycle
            heapq.heappop(heap)
        return None

    def _send_fn(self, link: Link, endpoint: Endpoint, flit: Flit, out_vc: int, now: int) -> None:
        # Link.on_flit_sent, inlined (one call per flit-hop).
        link.busy_until = now + link.cycles_per_flit
        if link._k is not None:
            link._k.link_busy[link.index] = link.busy_until
        link.flits_carried += 1
        link.bits_carried += self._flit_width
        if link.medium is not None:
            link.medium.on_flit_sent(now, link.cycles_per_flit, flit.is_tail)
        if link.fault is not None:
            self._faults.note_send(link, flit, now)
        if self._tracer is not None:
            self._tracer.on_flit_sent(link, flit, now)
        # _schedule, inlined (hottest event producer: one per flit-hop).
        cycle = now + link.latency
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [("flit", endpoint, out_vc, flit)]
            heapq.heappush(self._event_cycles, cycle)
        else:
            bucket.append(("flit", endpoint, out_vc, flit))

    def _credit_fn(self, endpoint: Endpoint, vc: int, now: int) -> None:
        cycle = now + self.credit_latency
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [("credit", endpoint, vc)]
            heapq.heappush(self._event_cycles, cycle)
        else:
            bucket.append(("credit", endpoint, vc))

    def _deliver(self, endpoint: Endpoint, vc: int, flit: Flit, now: int) -> None:
        tracer = self._tracer
        if flit.fate is not None:
            # CRC failure / dead transceiver: the receiver discards the flit
            # (repro.faults handles credit return and NACK scheduling).
            self._faults.note_drop(endpoint, vc, flit, now)
            return
        if tracer is not None:
            tracer.on_flit_delivered(endpoint, flit, now)
        if endpoint.is_sink:
            self.stats.on_flit_ejected(now, flit.packet)
            if flit.is_tail:
                flit.packet.t_eject = now
                self.stats.on_packet_ejected(flit.packet, now)
                if tracer is not None:
                    tracer.on_packet_ejected(flit.packet, now)
        else:
            endpoint.router.deliver_flit(endpoint.in_port, vc, flit)

    # ------------------------------------------------------------------ #
    # The cycle
    # ------------------------------------------------------------------ #

    def step(self) -> int:
        """Execute one cycle; return the number of flits that moved."""
        now = self.now
        moved = 0

        # Phase 1: deliveries + credit returns scheduled for this cycle.
        events = self._events.pop(now, None)
        if events:
            tracer_ = self._tracer
            for ev in events:
                kind = ev[0]
                if kind == "flit":
                    # Simulator._deliver, inlined (one per flit-hop).
                    endpoint = ev[1]
                    flit = ev[3]
                    if flit.fate is not None:
                        # CRC failure / dead transceiver: the receiver
                        # discards the flit (repro.faults handles credit
                        # return and NACK scheduling).
                        self._faults.note_drop(endpoint, ev[2], flit, now)
                        moved += 1
                        continue
                    if tracer_ is not None:
                        tracer_.on_flit_delivered(endpoint, flit, now)
                    if endpoint.is_sink:
                        self.stats.on_flit_ejected(now, flit.packet)
                        if flit.is_tail:
                            flit.packet.t_eject = now
                            self.stats.on_packet_ejected(flit.packet, now)
                            if tracer_ is not None:
                                tracer_.on_packet_ejected(flit.packet, now)
                    else:
                        endpoint.router.deliver_flit(endpoint.in_port, ev[2], flit)
                    moved += 1
                elif kind == "credit":
                    # Endpoint.return_credit, inlined (one per flit-hop),
                    # including the parked-VCA re-arm.
                    endpoint = ev[1]
                    if not endpoint.is_sink:
                        v = ev[2]
                        c = endpoint.credits[v] + 1
                        endpoint.credits[v] = c
                        if endpoint._k is not None:
                            endpoint._k.credits[endpoint.kslot + v] = c
                        ni = endpoint.ni
                        if ni is not None and ni.parked:
                            ni.parked = False
                            self._active_nis.add(ni)
                        waiters = endpoint.vca_credit_waiters
                        if waiters and not endpoint.vc_busy[v]:
                            # Size-filtered re-arm; see Endpoint.return_credit.
                            kept = [w for w in waiters if w[2] > c]
                            if len(kept) != len(waiters):
                                for router, key, size in waiters:
                                    if size <= c:
                                        router._vca_pending.add(key)
                                endpoint.vca_credit_waiters = kept
                else:  # link-layer ACK/NACK arrival ("llack")
                    self._faults.handle_event(ev, now)

        # Phase 2: shared-medium (token) arbitration (event-driven request
        # sets; O(active media) per cycle, not O(all media)).
        tracer = self._tracer
        active_media = self._active_media
        if active_media:
            for medium in sorted(active_media, key=_medium_key):
                if not medium.requesters:
                    active_media.discard(medium)
                    continue
                if medium.holder is None:
                    granted = medium.try_grant(now)
                    if tracer is not None and granted is not None:
                        tracer.on_token_grant(medium, granted, now)

        # Phase 2.5: fault injection + link-layer retransmission engines.
        # Placed after token arbitration (a freshly granted engine transmits
        # this cycle) and before SA (retransmissions pre-empt new packets by
        # marking the link busy).
        if self._faults is not None:
            moved += self._faults.tick(self, now)

        # Phase 3: switch allocation + traversal, then phases 4 & 5 (VC
        # allocation, route computation) -- all over the sorted snapshot of
        # routers that currently hold flits. Deliveries (phase 1) woke any
        # newly occupied router before this snapshot was taken; routers that
        # drained are pruned from the active set on the second pass.
        active_routers = self._active_routers
        if active_routers:
            routers = sorted(active_routers, key=_router_key)
            send_fn = self._send_fn
            credit_fn = self._credit_fn
            if self._sa_kernel:
                # Struct-of-arrays path: one network-wide sweep over the
                # flat slot arrays (bit-identical to the per-router object
                # scan below; see repro.noc.kernels).
                if self.kernels.sa_slots:
                    moved += self.kernels.sa_sweep(now, send_fn, credit_fn)
            else:
                for router in routers:
                    if router._sa_active:
                        moved += router.stage_sa(now, send_fn, credit_fn)
            for router in routers:
                if router._vca_pending:
                    router.stage_vca(now)
                if router._rc_pending:
                    router.stage_rc(now)
                if not router._occupied:
                    active_routers.discard(router)

        # Phase 6: traffic generation + NI injection.
        if self.traffic is not None:
            for packet in self.traffic.tick(now):
                self.stats.on_packet_created(packet)
                if tracer is not None:
                    tracer.on_packet_created(packet, now)
                self.network.inject_packet(packet)
        active_nis = self._active_nis
        if active_nis:
            for ni in sorted(active_nis, key=_ni_key):
                if ni.queue:
                    if ni.pump(now):
                        moved += 1
                        if not ni.queue:
                            active_nis.discard(ni)
                    else:
                        # Blocked on the endpoint (no free/funded VC): park
                        # until a credit return or VC release re-arms it.
                        # Failed pumps have no side effects, so skipping the
                        # re-polls is invisible to the simulation result.
                        ni.parked = True
                        active_nis.discard(ni)
                else:
                    active_nis.discard(ni)

        # End-of-cycle hooks (adaptive controllers).
        if self._hooks:
            for hook in self._hooks:
                hook(self)

        # Periodic buffer-occupancy sampling (congestion heatmaps). Pure
        # observation -- sampled runs are bit-identical to unsampled ones.
        if tracer is not None and tracer.sample_every:
            if now % tracer.sample_every == 0:
                tracer.on_cycle_sample(now)

        # Progress heartbeat (repro.obs). `>=` rather than `%` so idle
        # fast-forward jumps cannot starve the beat: the first stepped
        # cycle at or past the due point emits. Pure observation --
        # observed runs are bit-identical to unobserved ones.
        observer = self._observer
        if observer is not None and now >= observer.next_cycle:
            observer.sample(self, now)

        # Watchdog: flits buffered but nothing moved for too long -> deadlock.
        # Scheduled events (deliveries in flight on long-latency links,
        # pending credits, link-layer ACKs) are guaranteed future progress,
        # so the watchdog only trips when the event queue is empty too --
        # otherwise a C2C wireless hop slower than the watchdog budget would
        # raise a false deadlock.
        if moved:
            self._last_progress = now
        elif (
            not self._events
            and now - self._last_progress > self.watchdog
            and self.network.total_occupancy()
        ):
            if tracer is not None:
                tracer.on_deadlock(now, self.network.total_occupancy())
            raise SimulationDeadlock(self._deadlock_report(now))

        self.now = now + 1
        return moved

    def _deadlock_report(self, now: int) -> str:
        """Deadlock diagnostics: invariant audit + where the flits sit.

        Everything needed to debug a VC-partitioning mistake lands in the
        exception message: whether a conservation law broke (pointing to a
        simulator bug) or the audit is clean (pointing to a protocol-level
        cycle), plus the per-router occupancy of the stuck flits.
        """
        from repro.noc.invariants import audit_network

        lines = [
            f"{self.network.name}: no progress for {self.watchdog} cycles "
            f"at cycle {now} with {self.network.total_occupancy()} flits buffered"
        ]
        try:
            summary = audit_network(self)
        except AssertionError as exc:
            lines.append(f"invariant audit FAILED: {exc}")
        else:
            lines.append(f"invariant audit clean: {summary}")
        stuck = []
        for router in self.network.routers:
            occ = router.occupancy()
            if occ:
                vcs = []
                for port in router.input_ports:
                    for vc in port.vcs:
                        if vc.queue:
                            front = vc.queue[0]
                            vcs.append(
                                f"in{port.index}.vc{vc.index}[{len(vc.queue)} "
                                f"flits, {vc.state.name}, pid={front.packet.pid}"
                                f"->out{vc.out_port}]"
                            )
                stuck.append(f"  r{router.rid} ({occ} flits): " + ", ".join(vcs))
        shown = stuck[:20]
        lines.append(f"stuck flits by router ({len(stuck)} routers):")
        lines.extend(shown)
        if len(stuck) > len(shown):
            lines.append(f"  ... and {len(stuck) - len(shown)} more routers")
        return "\n".join(lines)

    def _quiescent(self) -> bool:
        """No component holds work: nothing can happen until a wake source.

        Scheduled events and future fault-campaign actions / traffic
        injections do *not* count -- they are precisely the wake sources the
        fast-forward jumps to.
        """
        return (
            not self._active_routers
            and not self._active_nis
            and not self._active_media
            and (self._faults is None or not self._faults.pending_work())
        )

    def _next_wake(self, limit: int) -> int:
        """Earliest cycle in ``[now, limit]`` at which anything can happen.

        Consulted only while quiescent. Wake sources, in order: scheduled
        events (deliveries / credits / ACKs), fault-campaign actions, the
        tracer's occupancy-sampling grid, and the traffic process's next
        injection. The traffic peek is asked last so its lookahead horizon
        is already capped by every other source -- it never pre-draws RNG
        cycles a dense run would not have reached by the same point.
        """
        now = self.now
        target = limit
        cycle = self._next_event_cycle()
        if cycle is not None and cycle < target:
            target = cycle
        if self._faults is not None:
            cycle = self._faults.next_action_cycle(now)
            if cycle is not None and cycle < target:
                target = cycle
        tracer = self._tracer
        if tracer is not None and tracer.sample_every:
            every = tracer.sample_every
            cycle = now if now % every == 0 else ((now // every) + 1) * every
            if cycle < target:
                target = cycle
        # Hook epoch boundaries are scheduled events: a skip may never jump
        # over a control epoch, or an adaptive controller would silently
        # diverge from dense stepping (where it observes every cycle).
        for hook in self._hooks:
            cycle = hook.next_wake(now)
            if cycle is not None and cycle < target:
                target = cycle
        if target <= now:
            return now
        if self.traffic is not None:
            peek = getattr(self.traffic, "next_injection_cycle", None)
            if peek is None:
                return now  # opaque traffic process: never skip its ticks
            cycle = peek(now, target)
            if cycle is not None and cycle < target:
                target = cycle
        return target

    def _can_fast_forward(self) -> bool:
        # End-of-cycle hooks that declare their epoch boundaries
        # (``next_wake``) become wake sources in :meth:`_next_wake`; a hook
        # without one might act on any cycle and forces dense stepping.
        return not self.dense and self._hooks_schedulable and self._quiescent()

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles.

        Idle stretches are fast-forwarded to the next wake source unless
        ``dense=True`` was requested (or an end-of-cycle hook without a
        ``next_wake`` epoch schedule is installed).
        Fast-forwarded cycles are no-ops by construction, so both modes
        execute the identical sequence of effective cycles.
        """
        end = self.now + cycles
        while self.now < end:
            if self._can_fast_forward():
                target = self._next_wake(end)
                if target > self.now:
                    self.now = target
                    continue
            self.step()

    def drain(self, max_cycles: int = 50_000) -> bool:
        """Pause traffic and run until the network empties.

        Returns ``True`` if fully drained, ``False`` on hitting the budget.
        The traffic process is *paused*, not discarded: call
        :meth:`resume_traffic` to restore injection after the drain
        checkpoint.
        """
        if self.traffic is not None:
            self._paused_traffic = self.traffic
            self.traffic = None
        tracer = self._tracer
        if tracer is not None:
            tracer.on_drain_start(
                self.now, self.network.total_occupancy(), self._backlog()
            )
        start_ejected = self.stats.packets_ejected
        moved = 0
        drained = False
        budget = max_cycles
        while budget > 0:
            if not self._pending_work():
                drained = True
                break
            if self._can_fast_forward():
                # Quiescent but events still in flight (e.g. the last tail
                # flits travelling to their sinks): jump straight to them,
                # charging the skipped idle cycles against the budget just
                # as dense stepping would burn them.
                target = self._next_wake(self.now + budget)
                if target > self.now:
                    budget -= target - self.now
                    self.now = target
                    continue
            moved += self.step()
            budget -= 1
        else:
            drained = not self._pending_work()
        if tracer is not None:
            tracer.on_drain_end(
                self.now, moved, self.stats.packets_ejected - start_ejected, drained
            )
        return drained

    def resume_traffic(self) -> Optional[object]:
        """Restore the traffic process paused by :meth:`drain`.

        Returns the active traffic process (``None`` if there was none).
        A traffic object installed manually after the drain wins over the
        paused one.
        """
        if self.traffic is None:
            self.traffic = self._paused_traffic
        self._paused_traffic = None
        if self._tracer is not None:
            self._tracer.on_traffic_resumed(self.now, self.traffic is not None)
        return self.traffic

    def _backlog(self) -> int:
        """Flits queued at NIs but not yet injected into the network."""
        return sum(
            len(ni.queue) for ni in self.network.interfaces if ni is not None
        )

    def _pending_work(self) -> bool:
        if self._events:
            return True
        if self.network.total_occupancy():
            return True
        if self._faults is not None and self._faults.pending_work():
            return True
        return any(ni is not None and ni.queue for ni in self.network.interfaces)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def summary(self) -> Dict[str, float]:
        return self.stats.summary(self.now)

    def throughput(self) -> float:
        return self.stats.throughput_flits_per_core_cycle(self.now)

    def mean_latency(self) -> float:
        return self.stats.latency_stats().mean
