"""Cycle-accurate NoC simulation substrate.

This subpackage is the simulator the paper's evaluation rests on: flit-level
virtual-channel routers (RC/VCA/SA/ST/LT pipeline), credit flow control,
token-arbitrated photonic MWSR buses and SWMR wireless multicast channels.
Topology builders live in :mod:`repro.topologies` and :mod:`repro.core`.
"""

from repro.noc.packet import Packet, Flit, FlitKind, PacketIdAllocator, reset_packet_ids
from repro.noc.buffers import VirtualChannel, InputPort, VCState
from repro.noc.arbiters import RoundRobinArbiter, MatrixArbiter, make_arbiter
from repro.noc.links import (
    Endpoint,
    Link,
    SharedMedium,
    ELECTRICAL,
    PHOTONIC,
    WIRELESS,
    LINK_KINDS,
)
from repro.noc.router import Router, RoutingFunction
from repro.noc.network import Network, NetworkInterface
from repro.noc.simulator import Simulator, SimulationDeadlock
from repro.noc.stats import StatsCollector, LatencyStats

__all__ = [
    "Packet",
    "PacketIdAllocator",
    "Flit",
    "FlitKind",
    "reset_packet_ids",
    "VirtualChannel",
    "InputPort",
    "VCState",
    "RoundRobinArbiter",
    "MatrixArbiter",
    "make_arbiter",
    "Endpoint",
    "Link",
    "SharedMedium",
    "ELECTRICAL",
    "PHOTONIC",
    "WIRELESS",
    "LINK_KINDS",
    "Router",
    "RoutingFunction",
    "Network",
    "NetworkInterface",
    "Simulator",
    "SimulationDeadlock",
    "StatsCollector",
    "LatencyStats",
]
