"""Measurement collection for simulation runs.

Implements the standard open-loop methodology the paper uses: a warmup
window whose packets are excluded, then a measurement window over which we
report average packet latency and accepted throughput (flits per core per
cycle). Activity counters for the power model (per-link bits, per-router
events) are accumulated by the links/routers themselves; this module owns
the packet-level aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.noc.packet import Packet


@dataclass
class LatencyStats:
    """Summary statistics over recorded packet latencies."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    max: float

    def as_dict(self) -> Dict[str, Optional[float]]:
        """JSON-safe dict: NaN fields (empty-sample stats) become ``None``.

        ``json.dumps`` would happily emit a bare ``NaN`` token -- which is
        *not* JSON and breaks strict parsers -- so anything headed for a
        run record must go through this (or the equivalent sanitiser in
        :mod:`repro.runtime.records`).
        """
        out: Dict[str, Optional[float]] = {"count": self.count}
        for name in ("mean", "median", "p95", "p99", "max"):
            v = getattr(self, name)
            out[name] = None if v != v else v
        return out

    @staticmethod
    def from_samples(samples: List[int]) -> "LatencyStats":
        # Empty-sample stats stay NaN *in process* (arithmetic-friendly
        # sentinel); the JSON boundary renders them as null (see as_dict
        # and repro.runtime.records).
        if not samples:
            return LatencyStats(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
        arr = np.asarray(samples, dtype=np.float64)
        return LatencyStats(
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )


class StatsCollector:
    """Collects packet-level statistics during a simulation.

    Parameters
    ----------
    n_cores:
        Number of cores; normalises throughput.
    warmup_cycles:
        Packets *created* before this cycle are excluded from latency and
        throughput accounting (they still traverse the network and load it).
    """

    def __init__(self, n_cores: int, warmup_cycles: int = 0) -> None:
        self.n_cores = n_cores
        self.warmup_cycles = warmup_cycles

        self.latencies: List[int] = []
        #: Network-only latency (injection at the NI to ejection), i.e. the
        #: end-to-end figure minus source queueing. The gap between the two
        #: distributions is the standard saturation diagnostic.
        self.network_latencies: List[int] = []
        self.packets_ejected = 0
        #: Flits delivered inside the measurement window (ejection-time
        #: test). Throughput is the steady-state *delivery rate* over the
        #: window, so it counts every ejection in it -- unlike the latency
        #: samples below, which admit only packets *created* after warmup
        #: (mixing injection epochs skews the latency distribution).
        self.flits_ejected = 0
        #: Every delivered flit regardless of epoch (power accounting:
        #: energy is spent on warmup flits too).
        self.flits_ejected_total = 0
        self.packets_created = 0
        self.flits_created = 0
        self.measured_packets = 0
        self.measured_flits = 0
        self.hop_sum = 0
        self.wireless_hop_sum = 0
        self.photonic_hop_sum = 0
        self.electrical_hop_sum = 0
        self.first_measured_cycle: Optional[int] = None
        self.last_cycle = 0

        # Link-layer retransmission protocol counters (repro.faults). All
        # stay zero on fault-free runs; flit conservation in
        # repro.noc.invariants balances created + retransmitted against
        # ejected + in-network + dropped.
        self.flits_retransmitted = 0
        self.flits_dropped = 0
        self.packets_retransmitted = 0
        self.acks = 0
        self.nacks = 0
        self.timeouts = 0
        self.packets_recovered = 0
        self.channels_failed_over = 0
        self.channels_recovered = 0

    # ------------------------------------------------------------------ #
    # Event hooks (called by the simulator)
    # ------------------------------------------------------------------ #

    def on_packet_created(self, packet: Packet) -> None:
        self.packets_created += 1
        self.flits_created += packet.size_flits
        # Injection-epoch tag consulted at ejection time (and by the
        # telemetry tracer): only packets born inside the measurement
        # window count towards measured statistics.
        packet.measured = packet.t_create >= self.warmup_cycles

    def on_flit_ejected(self, now: int, packet: Optional[Packet] = None) -> None:
        self.last_cycle = max(self.last_cycle, now)
        self.flits_ejected_total += 1
        if now >= self.warmup_cycles:
            if self.first_measured_cycle is None:
                self.first_measured_cycle = now
            self.flits_ejected += 1

    def on_packet_ejected(self, packet: Packet, now: int) -> None:
        self.packets_ejected += 1
        measured = packet.measured
        if measured is None:
            # Created outside any collector (manual injection in tests):
            # fall back to the injection-epoch test directly.
            measured = packet.t_create >= self.warmup_cycles
        if measured:
            self.measured_packets += 1
            self.measured_flits += packet.size_flits
            self.latencies.append(now - packet.t_create)
            if packet.t_inject is not None:
                self.network_latencies.append(now - packet.t_inject)
            self.hop_sum += packet.hops
            self.wireless_hop_sum += packet.wireless_hops
            self.photonic_hop_sum += packet.photonic_hops
            self.electrical_hop_sum += packet.electrical_hops

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.latencies)

    def network_latency_stats(self) -> LatencyStats:
        """Latency excluding source (NI) queueing."""
        return LatencyStats.from_samples(self.network_latencies)

    def queueing_latency_mean(self) -> float:
        """Average cycles packets spend queued at their source NI."""
        if not self.latencies or not self.network_latencies:
            return float("nan")
        total = sum(self.latencies) / len(self.latencies)
        network = sum(self.network_latencies) / len(self.network_latencies)
        return total - network

    def throughput_flits_per_core_cycle(self, end_cycle: int) -> float:
        """Accepted throughput over the measurement window."""
        window = end_cycle - self.warmup_cycles
        if window <= 0:
            return float("nan")
        return self.flits_ejected / (self.n_cores * window)

    def avg_hops(self) -> float:
        return self.hop_sum / self.measured_packets if self.measured_packets else float("nan")

    def avg_wireless_hops(self) -> float:
        return self.wireless_hop_sum / self.measured_packets if self.measured_packets else float("nan")

    def retransmission_summary(self) -> Dict[str, int]:
        """Link-layer protocol counters (all zero on fault-free runs)."""
        return {
            "flits_retransmitted": self.flits_retransmitted,
            "flits_dropped": self.flits_dropped,
            "packets_retransmitted": self.packets_retransmitted,
            "acks": self.acks,
            "nacks": self.nacks,
            "timeouts": self.timeouts,
            "packets_recovered": self.packets_recovered,
            "channels_failed_over": self.channels_failed_over,
            "channels_recovered": self.channels_recovered,
        }

    def summary(self, end_cycle: int) -> Dict[str, Optional[float]]:
        """Headline metrics for run records.

        With zero completed packets the latency metrics are emitted as an
        *explicit* ``n=0`` sentinel -- ``latency_samples`` 0 alongside
        ``None`` values -- rather than NaN left for the JSON layer to
        coerce. ``repro diff`` distinguishes this sentinel from a missing
        metric and flags an empty-vs-populated mismatch as a regression.
        """
        lat = self.latency_stats()
        net_lat = self.network_latency_stats()
        empty = lat.count == 0
        return {
            "packets_measured": float(self.measured_packets),
            "latency_samples": float(lat.count),
            "latency_mean": None if empty else lat.mean,
            "latency_p99": None if empty else lat.p99,
            "network_latency_mean": None if net_lat.count == 0 else net_lat.mean,
            "queueing_latency_mean": (
                None if empty or net_lat.count == 0
                else self.queueing_latency_mean()
            ),
            "throughput": self.throughput_flits_per_core_cycle(end_cycle),
            "avg_hops": self.avg_hops(),
            "avg_wireless_hops": self.avg_wireless_hops(),
        }
