"""Network container: routers, links, shared media and core attachment.

A :class:`Network` is what topology builders (``repro.topologies.*`` and
``repro.core.own*``) produce and what the :class:`repro.noc.simulator.
Simulator` executes. It owns:

* the router list and every link / shared medium,
* the core attachment maps (which router hosts core *i*, which local input
  port injects for it, which output port ejects to it),
* per-core network-interface (NI) injection queues.

Builders use three connection helpers:

* :meth:`Network.connect` -- point-to-point link (electrical or photonic
  point-to-point as in the p-Clos),
* :meth:`Network.connect_bus` -- MWSR bus: many writers, one reader, token
  arbitration (photonic crossbars; OWN-256 wireless pairs degenerate to a
  single writer),
* :meth:`Network.connect_multicast` -- SWMR channel: token among writers,
  per-packet receiver resolution, multicast receive accounting (OWN-1024
  inter-group wireless).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.noc.links import Endpoint, Link, SharedMedium, ELECTRICAL
from repro.noc.packet import Flit, Packet
from repro.noc.router import Router, RoutingFunction

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np


class NetworkInterface:
    """Per-core injection queue (open-loop source).

    The NI holds an unbounded queue of flits awaiting buffer space at the
    local router input port and performs the upstream half of VC allocation
    for injected packets (grab a free VC for each head flit, follow with the
    body, release on tail) exactly like a link writer would.
    """

    __slots__ = (
        "core",
        "endpoint",
        "queue",
        "current_vc",
        "flits_injected",
        "packets_queued",
        "parked",
        "_wake",
    )

    def __init__(self, core: int, endpoint: Endpoint) -> None:
        self.core = core
        self.endpoint = endpoint
        self.queue: Deque[Flit] = deque()
        self.current_vc: Optional[int] = None
        self.flits_injected = 0
        self.packets_queued = 0
        #: Backlogged but blocked on the endpoint (no free/funded VC): out
        #: of the simulator's active set until a credit return or VC release
        #: on the endpoint re-arms it (failed pumps have no side effects, so
        #: skipping them is invisible to the simulation result).
        self.parked = False
        # Scheduler callback: invoked with ``self`` on the empty->backlogged
        # transition so the simulator re-registers this NI in its active set.
        self._wake: Optional[Callable[["NetworkInterface"], None]] = None
        endpoint.ni = self

    def enqueue_packet(self, packet: Packet) -> None:
        if not self.queue and self._wake is not None:
            self._wake(self)
        self.queue.extend(packet.make_flits())
        self.packets_queued += 1

    def requeue_flits(self, flits: Sequence[Flit]) -> None:
        """Re-enter recovered flits (link-layer retransmission fallback).

        Same as :meth:`enqueue_packet` for scheduler purposes but without
        counting a new queued packet -- the packet was already accounted at
        first injection.
        """
        if not self.queue and self._wake is not None:
            self._wake(self)
        self.queue.extend(flits)

    def pump(self, now: int) -> int:
        """Move up to one flit per cycle into the router; return flits moved."""
        queue = self.queue
        if not queue:
            return 0
        endpoint = self.endpoint
        credits = endpoint.credits
        flit = queue[0]
        vc = self.current_vc
        if vc is None:
            if not flit.is_head:
                return 0
            # Claim a free input VC with room for the whole packet (virtual
            # cut-through admission, mirroring router-side VC allocation;
            # Endpoint.can_accept_packet inlined, its can-never-fit guard
            # hoisted out of the per-VC scan).
            size = flit.packet.size_flits
            if size > endpoint.vc_depth:
                raise ValueError(
                    f"packet of {size} flits can never fit VC depth "
                    f"{endpoint.vc_depth} at {endpoint.name or 'endpoint'}"
                )
            vc_busy = endpoint.vc_busy
            for v in range(endpoint.num_vcs):
                if not vc_busy[v] and credits[v] >= size:
                    vc_busy[v] = True  # Endpoint.acquire_vc, inlined
                    if endpoint._k is not None:
                        endpoint._k.vc_busy[endpoint.kslot + v] = True
                    self.current_vc = vc = v
                    break
            else:
                return 0
        elif credits[vc] <= 0:
            return 0
        queue.popleft()
        credits[vc] -= 1  # Endpoint.take_credit, inlined (credit > 0 above)
        if endpoint._k is not None:
            endpoint._k.credits[endpoint.kslot + vc] = credits[vc]
        endpoint.router.deliver_flit(endpoint.in_port, vc, flit)
        self.flits_injected += 1
        if flit.is_head:
            flit.packet.t_inject = now
        if flit.is_tail:
            endpoint.release_vc(vc)
            self.current_vc = None
        return 1

    @property
    def backlog(self) -> int:
        return len(self.queue)


class Network:
    """A complete NoC instance ready for simulation."""

    def __init__(
        self,
        name: str,
        n_cores: int,
        num_vcs: int = 4,
        vc_depth: int = 4,
        flit_width_bits: int = 128,
    ) -> None:
        if n_cores < 2:
            raise ValueError(f"need at least 2 cores, got {n_cores}")
        self.name = name
        self.n_cores = n_cores
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.flit_width_bits = flit_width_bits

        self.routers: List[Router] = []
        self.links: List[Link] = []
        self.mediums: List[SharedMedium] = []
        self.interfaces: List[Optional[NetworkInterface]] = [None] * n_cores

        self.core_router: List[Optional[int]] = [None] * n_cores
        self.core_eject_port: List[Optional[int]] = [None] * n_cores

        self._finalized = False

    # ------------------------------------------------------------------ #
    # Builder API
    # ------------------------------------------------------------------ #

    def add_router(
        self,
        position_mm: Tuple[float, float] = (0.0, 0.0),
        attrs: Optional[dict] = None,
    ) -> Router:
        router = Router(
            rid=len(self.routers),
            num_vcs=self.num_vcs,
            vc_depth=self.vc_depth,
            position_mm=position_mm,
            attrs=attrs,
        )
        self.routers.append(router)
        return router

    def attach_core(self, core: int, rid: int) -> None:
        """Attach core ``core`` to router ``rid`` (inject + eject ports)."""
        if self.core_router[core] is not None:
            raise ValueError(f"core {core} already attached")
        router = self.routers[rid]
        inject_endpoint = router.add_input_port(kind="local")
        self.interfaces[core] = NetworkInterface(core, inject_endpoint)
        self.core_router[core] = rid

        sink = Endpoint(None, core, num_vcs=1, vc_depth=1, is_sink=True, name=f"core{core}.sink")
        out_port = router.add_output_port()
        link = Link(
            name=f"eject.r{rid}.c{core}",
            src_router=router,
            out_port=out_port,
            endpoint=sink,
            kind=ELECTRICAL,
            latency=1,
            length_mm=0.5,
        )
        router.attach_link(out_port, link)
        self.links.append(link)
        self.core_eject_port[core] = out_port

    def connect(
        self,
        src_rid: int,
        dst_rid: int,
        kind: str = ELECTRICAL,
        latency: int = 1,
        cycles_per_flit: int = 1,
        length_mm: Optional[float] = None,
        name: Optional[str] = None,
        channel_id: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Point-to-point link; returns ``(out_port at src, in_port at dst)``."""
        src = self.routers[src_rid]
        dst = self.routers[dst_rid]
        endpoint = dst.add_input_port(kind=kind)
        out_port = src.add_output_port()
        if length_mm is None:
            length_mm = _euclid(src.position_mm, dst.position_mm)
        link = Link(
            name=name or f"{kind}.r{src_rid}->r{dst_rid}",
            src_router=src,
            out_port=out_port,
            endpoint=endpoint,
            kind=kind,
            latency=latency,
            cycles_per_flit=cycles_per_flit,
            length_mm=length_mm,
            channel_id=channel_id,
        )
        src.attach_link(out_port, link)
        self.links.append(link)
        return out_port, endpoint.in_port

    def connect_bus(
        self,
        writer_rids: Sequence[int],
        reader_rid: int,
        kind: str,
        medium: SharedMedium,
        latency: int = 1,
        cycles_per_flit: int = 1,
        length_mm: float = 10.0,
        channel_id: Optional[int] = None,
    ) -> Dict[int, int]:
        """MWSR bus: one shared input port at the reader, one writer link each.

        Returns a map ``writer_rid -> out_port`` at each writer.
        """
        if not writer_rids:
            raise ValueError("bus needs at least one writer")
        reader = self.routers[reader_rid]
        endpoint = reader.add_input_port(kind=kind)
        self._register_medium(medium)
        ports: Dict[int, int] = {}
        for w in writer_rids:
            writer = self.routers[w]
            out_port = writer.add_output_port()
            link = Link(
                name=f"{medium.name}.w{w}",
                src_router=writer,
                out_port=out_port,
                endpoint=endpoint,
                kind=kind,
                latency=latency,
                cycles_per_flit=cycles_per_flit,
                length_mm=length_mm,
                medium=medium,
                channel_id=channel_id,
            )
            writer.attach_link(out_port, link)
            self.links.append(link)
            ports[w] = out_port
        return ports

    def connect_multicast(
        self,
        writer_rids: Sequence[int],
        reader_rids: Sequence[int],
        resolver: Callable[[Packet], object],
        reader_keys: Sequence[object],
        kind: str,
        medium: SharedMedium,
        latency: int = 1,
        cycles_per_flit: int = 1,
        length_mm: float = 30.0,
        channel_id: Optional[int] = None,
    ) -> Dict[int, int]:
        """SWMR channel: every writer can reach every reader; multicast RX.

        ``reader_keys[i]`` is the resolver key selecting ``reader_rids[i]``.
        Returns ``writer_rid -> out_port``.
        """
        if len(reader_rids) != len(reader_keys):
            raise ValueError("reader_rids and reader_keys must align")
        if medium.multicast_degree != len(reader_rids):
            raise ValueError(
                f"medium multicast_degree={medium.multicast_degree} but "
                f"{len(reader_rids)} readers given"
            )
        endpoints: Dict[object, Endpoint] = {}
        for key, rr in zip(reader_keys, reader_rids):
            endpoints[key] = self.routers[rr].add_input_port(kind=kind)
        self._register_medium(medium)
        ports: Dict[int, int] = {}
        for w in writer_rids:
            writer = self.routers[w]
            out_port = writer.add_output_port()
            link = Link(
                name=f"{medium.name}.w{w}",
                src_router=writer,
                out_port=out_port,
                endpoint=None,
                endpoints=endpoints,
                resolver=resolver,
                kind=kind,
                latency=latency,
                cycles_per_flit=cycles_per_flit,
                length_mm=length_mm,
                medium=medium,
                channel_id=channel_id,
            )
            writer.attach_link(out_port, link)
            self.links.append(link)
            ports[w] = out_port
        return ports

    def _register_medium(self, medium: SharedMedium) -> None:
        """Record a shared medium once, assigning its arbitration index.

        A builder may route several buses over one medium object; the
        arbitration phase must still visit it exactly once per cycle, and
        the index gives the simulator a deterministic iteration order over
        whatever subset of media is currently active.
        """
        if medium.index < 0:
            medium.index = len(self.mediums)
            self.mediums.append(medium)

    def set_routing(self, routing: RoutingFunction) -> None:
        for router in self.routers:
            router.routing = routing

    def finalize(self) -> None:
        """Validate construction and size the allocators."""
        for core in range(self.n_cores):
            if self.core_router[core] is None:
                raise ValueError(f"core {core} was never attached to a router")
        for router in self.routers:
            if router.routing is None:
                raise ValueError(f"router {router.rid} has no routing function")
            router.finalize()
        self._finalized = True

    # ------------------------------------------------------------------ #
    # Introspection helpers (tests, power accounting, DESIGN checks)
    # ------------------------------------------------------------------ #

    @property
    def n_routers(self) -> int:
        return len(self.routers)

    def radix_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for r in self.routers:
            hist[r.radix] = hist.get(r.radix, 0) + 1
        return hist

    def links_by_kind(self, kind: str) -> List[Link]:
        return [l for l in self.links if l.kind == kind]

    def total_occupancy(self) -> int:
        return sum(r.occupancy() for r in self.routers)

    def inject_packet(self, packet: Packet) -> None:
        """Queue a packet at its source core's NI."""
        ni = self.interfaces[packet.src_core]
        if ni is None:
            raise RuntimeError(f"core {packet.src_core} has no network interface")
        ni.enqueue_packet(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network({self.name!r}, cores={self.n_cores}, routers={self.n_routers}, "
            f"links={len(self.links)}, mediums={len(self.mediums)})"
        )


def _euclid(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5
