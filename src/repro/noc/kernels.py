"""Struct-of-arrays state block for the simulation core.

The object model (:mod:`repro.noc.router`, ``buffers``, ``links``) is the
*reference* implementation: every flow-control decision is expressed over
``Router`` / ``VirtualChannel`` / ``Endpoint`` attributes. This module
re-hosts the hot flow-control state in flat numpy arrays owned by the
simulator -- struct-of-arrays instead of per-object fields -- so the
per-cycle switch-allocation scan can evaluate candidate masks and grants
over arrays instead of chasing object attributes:

* **credits / vc_busy** -- write-through mirrors of the per-endpoint
  credit/busy lists, updated wherever the object path mutates them (the
  ``Endpoint`` methods plus the enumerated inlined sites in ``NI.pump``,
  ``stage_vca``, ``_transmit`` and the simulator's credit-event loop). The
  lists stay authoritative: scalar hot-path reads keep list speed, while
  the bulk sweep fancy-indexes the mirror.
* **occ / vc_state / head_link / head_credit** -- write-through mirrors of
  per-VC object state, updated at the few enumerated mutation sites
  (``deliver_flit`` / ``stage_rc`` / ``stage_vca`` / ``_transmit`` /
  ``VirtualChannel.release``).
* **link_busy / link_medium, med_holder / med_grant_at / med_busy /
  med_blocked** -- link serialization timers and shared-medium token
  positions, mirrored by :class:`~repro.noc.links.Link` and
  :class:`~repro.noc.links.SharedMedium` write-through.
* **in_ptr / out_ptr** -- the kernel path's round-robin pointers (one per
  input port / per link). Initialised from the object arbiters at bind time
  and *path-local* thereafter: a run uses either the kernel sweep or the
  object ``stage_sa`` throughout, never both, so the two pointer sets are
  never mixed (and the invariant audit deliberately does not compare them).

Slot layout
-----------
One *slot* per (router, input port, VC), assigned contiguously in router-id
order::

    slot = vslot_base[rid] + in_port * num_vcs + vc

``num_vcs`` is required to be uniform network-wide (true for every topology
builder; ``supported`` is ``False`` otherwise and the simulator falls back
to the object path). Uniformity makes the input-port identity recoverable
arithmetically (``port_base = slot - slot % num_vcs``), and a sorted slot
list is automatically grouped by router and, within a router, by ascending
(in_port, vc) -- exactly the deterministic iteration order of the reference
loop. Credits index the same slot space: a bound endpoint's VC ``v`` lives
at ``endpoint.kslot + v``.

Determinism contract
--------------------
:meth:`KernelState.sa_sweep` reproduces the reference ``Router.stage_sa``
sweep bit-for-bit (property-tested in ``tests/runtime`` and gated by the 0%
golden diffs in CI). Two grant paths, selected by active-set size:

* below ``bulk_threshold`` slots, a single flat pass in ascending slot
  order evaluates eligibility lazily from the objects -- the reference
  semantics with the per-router call/arbiter overhead stripped out;
* at or above it, candidate masks are evaluated up front over the mirror
  arrays and winners selected with a stable lexsort. The up-front
  evaluation is legal because eligibility inputs (credits, link timers,
  token holds) are never written by *other* routers' same-cycle transmits:
  a downstream (endpoint, vc) is exclusively owned by one upstream VC
  (``vc_busy``), a link belongs to one router, and only the token holder
  transmits on a shared medium.

Both paths issue transmits in ascending (router, output-group) order --
the reference event-append order -- and both compute the round-robin
winner as ``argmin (i - ptr) % n`` with the pointer advancing to
``winner + 1``, identical to the inlined object arbiters.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.links import Endpoint, Link, SharedMedium
    from repro.noc.network import Network
    from repro.noc.router import Router
    from repro.noc.buffers import VirtualChannel


class KernelState:
    """Flat array state for one bound :class:`~repro.noc.network.Network`.

    Build with :meth:`build` (the network must be finalized). Binding
    installs back-references (``router._kern``, ``vc.gslot`` / ``vc.kern``,
    ``endpoint._k`` / ``endpoint.kslot``, ``link.index`` / ``link._k``,
    ``medium._k``) so the object code can write through to the mirrors.
    """

    __slots__ = (
        "network",
        "supported",
        "num_vcs",
        "n_slots",
        "vslot_base",
        "router_top",
        "slot_router",
        "slot_ip",
        "slot_vc",
        # flow-control mirrors (authoritative lists live on the endpoints):
        "credits",
        "vc_busy",
        # per-VC mirrors:
        "occ",
        "vc_state",
        "head_link",
        "head_credit",
        # link / medium mirrors:
        "link_busy",
        "link_medium",
        "med_holder",
        "med_grant_at",
        "med_busy",
        "med_blocked",
        # kernel-path arbitration state:
        "in_ptr",
        "out_ptr",
        "out_n",
        # switch-allocation work set (slot ids; lockstep with _sa_active):
        "sa_slots",
        "bulk_threshold",
    )

    def __init__(self) -> None:
        self.network: Optional["Network"] = None
        self.supported = False
        self.num_vcs = 0
        self.n_slots = 0
        self.sa_slots: set = set()
        #: Eligible-candidate count at which :meth:`sa_sweep` switches from
        #: the scalar winner scan to the vectorized (lexsort) grant
        #: selection. Both produce identical grants (unit-tested); the
        #: vectorized path amortises only on kilo-core active sets.
        self.bulk_threshold = 128

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, network: "Network") -> "KernelState":
        """Bind ``network``'s flow-control state into a fresh array block.

        Safe to call on a mid-life network: array contents are initialised
        from the current object state, so a rebind is a faithful snapshot.
        """
        k = cls()
        k.network = network
        routers = network.routers
        num_vcs = network.num_vcs
        if any(r.num_vcs != num_vcs for r in routers):
            # Mixed VC counts break the arithmetic slot layout; the
            # simulator falls back to the object reference path.
            return k
        k.supported = True
        k.num_vcs = num_vcs

        # --- slot layout -------------------------------------------------
        vslot_base: List[int] = []
        base = 0
        for r in routers:
            vslot_base.append(base)
            base += len(r.input_ports) * num_vcs
        k.n_slots = base
        k.vslot_base = np.asarray(vslot_base, dtype=np.int64)
        k.router_top = [
            vslot_base[rid] + len(r.input_ports) * num_vcs
            for rid, r in enumerate(routers)
        ]
        k.slot_router = [None] * base
        k.slot_ip = [0] * base
        k.slot_vc = [None] * base

        k.credits = np.zeros(base, dtype=np.int32)
        k.vc_busy = np.zeros(base, dtype=bool)
        k.occ = np.zeros(base, dtype=np.int32)
        k.vc_state = np.zeros(base, dtype=np.int8)
        k.head_link = np.full(base, -1, dtype=np.int32)
        k.head_credit = np.full(base, -1, dtype=np.int32)
        # Round-robin pointers as plain lists (indexed by port-base slot /
        # link): every access is scalar, where list indexing beats numpy.
        k.in_ptr = [0] * base

        for rid, r in enumerate(routers):
            r._kern = k
            rbase = vslot_base[rid]
            for ip, port in enumerate(r.input_ports):
                pbase = rbase + ip * num_vcs
                k.in_ptr[pbase] = r._in_arbs[ip]._next
                for iv, vc in enumerate(port.vcs):
                    s = pbase + iv
                    vc.gslot = s
                    vc.kern = k
                    k.slot_router[s] = r
                    k.slot_ip[s] = ip
                    k.slot_vc[s] = vc
                    k.occ[s] = len(vc.queue)
                    k.vc_state[s] = int(vc.state)
            for ip, endpoint in enumerate(r.input_endpoints):
                pbase = rbase + ip * num_vcs
                endpoint.kslot = pbase
                endpoint._k = k
                k.credits[pbase : pbase + num_vcs] = list(endpoint.credits)
                k.vc_busy[pbase : pbase + num_vcs] = list(endpoint.vc_busy)

        # --- links and shared media --------------------------------------
        links = network.links
        mediums = network.mediums
        nl = len(links)
        nm = len(mediums)
        k.link_busy = np.zeros(nl, dtype=np.int64)
        k.link_medium = np.full(nl, -1, dtype=np.int32)
        k.out_ptr = [0] * nl
        k.out_n = [1] * nl
        k.med_holder = np.full(max(nm, 1), -1, dtype=np.int32)
        k.med_grant_at = np.zeros(max(nm, 1), dtype=np.int64)
        k.med_busy = np.zeros(max(nm, 1), dtype=np.int64)
        k.med_blocked = np.zeros(max(nm, 1), dtype=np.int64)
        for li, link in enumerate(links):
            link.index = li
            link._k = k
            k.link_busy[li] = link.busy_until
            if link.medium is not None:
                k.link_medium[li] = link.medium.index
            src = link.src_router
            if src is not None:
                k.out_ptr[li] = src._out_arbs[link.out_port]._next
                k.out_n[li] = max(1, len(src.input_ports))
        for mi, medium in enumerate(mediums):
            medium._k = k
            holder = medium.holder
            k.med_holder[mi] = holder.index if holder is not None else -1
            k.med_grant_at[mi] = medium.grant_at
            k.med_busy[mi] = medium.busy_until
            k.med_blocked[mi] = medium.blocked_until

        # --- SA work set (usually empty at bind time) --------------------
        for r in routers:
            rbase = vslot_base[r.rid]
            for (ip, iv) in r._sa_active:
                k.sa_slots.add(rbase + ip * num_vcs + iv)

        # Head mirrors for packets already mid-switch (rebind case):
        for s in k.sa_slots:
            vc = k.slot_vc[s]
            r = k.slot_router[s]
            link = r.out_links[vc.out_port]
            k.head_link[s] = link.index
            ep = vc.endpoint
            k.head_credit[s] = -1 if ep.is_sink else ep.kslot + vc.out_vc
        return k

    # ------------------------------------------------------------------ #
    # The vectorized switch-allocation sweep
    # ------------------------------------------------------------------ #

    def sa_sweep(self, now: int, send_fn: Callable, credit_fn: Callable) -> int:
        """One network-wide SA/ST phase over the flat slot space.

        Bit-identical replacement for iterating ``stage_sa`` over the
        sorted active-router snapshot (see the module docstring for why the
        restructuring is legal). Returns the number of flits moved.
        """
        if len(self.sa_slots) < self.bulk_threshold:
            return self._sweep_scalar(now, send_fn, credit_fn)
        return self._sweep_bulk(now, send_fn, credit_fn)

    def _sweep_scalar(self, now: int, send_fn: Callable, credit_fn: Callable) -> int:
        """Flat single pass in ascending slot order, reading object state.

        The reference ``stage_sa`` semantics with the per-router dispatch,
        request-vector building and arbiter calls stripped out: eligibility
        is evaluated lazily per candidate (so cross-router precomputation
        legality is not even needed here) and the round-robin winner falls
        out of inline pointer arithmetic.
        """
        slots = sorted(self.sa_slots)
        n = len(slots)
        V = self.num_vcs
        in_ptr = self.in_ptr
        out_ptr = self.out_ptr
        out_n = self.out_n
        slot_router = self.slot_router
        slot_ip = self.slot_ip
        slot_vc = self.slot_vc
        router_top = self.router_top
        sa = self.sa_slots
        moved = 0
        i = 0
        while i < n:
            r = slot_router[slots[i]]
            rtop = router_top[r.rid]
            out_links = r.out_links
            winners = None
            # --- input-port arbitration over this router's segment -------
            while i < n and slots[i] < rtop:
                pb = slots[i]
                pb -= pb % V
                ptop = pb + V
                ptr = in_ptr[pb]
                best = V
                win = -1
                win_vc = None
                while i < n and slots[i] < ptop:
                    s = slots[i]
                    i += 1
                    vc = slot_vc[s]
                    endpoint = vc.endpoint
                    if not (endpoint.is_sink or endpoint.credits[vc.out_vc] > 0):
                        continue
                    link = out_links[vc.out_port]
                    if now < link.busy_until:
                        continue
                    medium = link.medium
                    if medium is not None and not (
                        medium.holder is link
                        and now >= medium.grant_at
                        and now >= medium.busy_until
                        and now >= medium.blocked_until
                    ):
                        if medium.holder is not link:
                            # Token held elsewhere: park on the link
                            # (re-armed by SharedMedium.try_grant), same
                            # as the reference path.
                            key = (slot_ip[s], vc.index)
                            sa.discard(s)
                            r._sa_active.discard(key)
                            link.sa_token_waiters.append((r, key))
                        continue
                    d = (s - pb - ptr) % V
                    if d < best:
                        best = d
                        win = s
                        win_vc = vc
                if win >= 0:
                    in_ptr[pb] = (win - pb + 1) % V
                    if winners is None:
                        winners = [(slot_ip[win], win_vc)]
                    else:
                        winners.append((slot_ip[win], win_vc))
            if winners is None:
                continue
            # --- output-port arbitration among the winners ---------------
            if len(winners) == 1:
                ip, vc = winners[0]
                li = out_links[vc.out_port].index
                out_ptr[li] = (ip + 1) % out_n[li]
                r._transmit(now, ip, vc, send_fn, credit_fn)
                moved += 1
                continue
            by_out = {}
            for ip, vc in winners:
                by_out.setdefault(vc.out_port, []).append((ip, vc))
            for out_port, contenders in by_out.items():
                li = out_links[out_port].index
                if len(contenders) == 1:
                    ip, vc = contenders[0]
                else:
                    nn = out_n[li]
                    ptr = out_ptr[li]
                    best = nn
                    ip, vc = contenders[0]
                    for cip, cvc in contenders:
                        d = (cip - ptr) % nn
                        if d < best:
                            best, ip, vc = d, cip, cvc
                out_ptr[li] = (ip + 1) % out_n[li]
                r._transmit(now, ip, vc, send_fn, credit_fn)
                moved += 1
        return moved

    def _sweep_bulk(self, now: int, send_fn: Callable, credit_fn: Callable) -> int:
        """Vectorized eligibility masks + lexsort winner selection."""
        slots = sorted(self.sa_slots)
        n = len(slots)
        np_slots = np.fromiter(slots, dtype=np.int64, count=n)

        # --- candidate masks (vectorized eligibility) --------------------
        hc = self.head_credit[np_slots]
        hl = self.head_link[np_slots]
        credit_ok = (hc < 0) | (self.credits[np.maximum(hc, 0)] > 0)
        link_ok = self.link_busy[hl] <= now
        mi = self.link_medium[hl]
        mi_safe = np.maximum(mi, 0)
        holder_is = self.med_holder[mi_safe] == hl
        token_ok = (mi < 0) | (
            holder_is
            & (self.med_grant_at[mi_safe] <= now)
            & (self.med_busy[mi_safe] <= now)
            & (self.med_blocked[mi_safe] <= now)
        )
        elig = credit_ok & link_ok & token_ok
        # Token held by another link: nothing changes for this VC until its
        # link is granted -- park it on the link (re-armed by
        # SharedMedium.try_grant), exactly like the object path.
        park = credit_ok & link_ok & (mi >= 0) & ~holder_is

        if park.any():
            slot_router = self.slot_router
            slot_vc = self.slot_vc
            sa = self.sa_slots
            for idx in np.nonzero(park)[0].tolist():
                s = slots[idx]
                vc = slot_vc[s]
                r = slot_router[s]
                key = (self.slot_ip[s], vc.index)
                sa.discard(s)
                r._sa_active.discard(key)
                r.out_links[vc.out_port].sa_token_waiters.append((r, key))

        n_elig = int(elig.sum())
        if not n_elig:
            return 0

        # --- input-port round-robin winners (stable lexsort) -------------
        # Primary key port, secondary cyclic distance from the pointer;
        # stability keeps the lowest slot among equal distances, matching
        # the scalar scan's strict < comparison.
        V = self.num_vcs
        in_ptr = self.in_ptr
        es = np_slots[elig]
        pbase = es - es % V
        ptrs = np.fromiter(
            (in_ptr[p] for p in pbase.tolist()), dtype=np.int64, count=es.size
        )
        dist = (es - pbase - ptrs) % V
        order = np.lexsort((dist, pbase))
        sp = pbase[order]
        first = np.ones(sp.size, dtype=bool)
        first[1:] = sp[1:] != sp[:-1]
        wins = es[order[first]]
        wbase = sp[first]
        for w, b in zip(wins.tolist(), wbase.tolist()):
            in_ptr[b] = (w - b + 1) % V
        winners = wins.tolist()  # ascending slot == ascending (rid, ip)

        # --- output-port arbitration + traversal, per router -------------
        moved = 0
        slot_router = self.slot_router
        slot_ip = self.slot_ip
        slot_vc = self.slot_vc
        router_top = self.router_top
        out_ptr = self.out_ptr
        out_n = self.out_n
        nw = len(winners)
        i = 0
        while i < nw:
            s = winners[i]
            r = slot_router[s]
            top = router_top[r.rid]
            j = i + 1
            while j < nw and winners[j] < top:
                j += 1
            if j == i + 1:
                vc = slot_vc[s]
                ip = slot_ip[s]
                li = r.out_links[vc.out_port].index
                out_ptr[li] = (ip + 1) % out_n[li]
                r._transmit(now, ip, vc, send_fn, credit_fn)
                moved += 1
            else:
                by_out = {}
                for s2 in winners[i:j]:
                    vc = slot_vc[s2]
                    by_out.setdefault(vc.out_port, []).append(s2)
                for out_port, group in by_out.items():
                    li = r.out_links[out_port].index
                    if len(group) == 1:
                        s2 = group[0]
                    else:
                        nn = out_n[li]
                        ptr = out_ptr[li]
                        best = nn
                        s2 = group[0]
                        for cand in group:
                            d = (slot_ip[cand] - ptr) % nn
                            if d < best:
                                best = d
                                s2 = cand
                    ip = slot_ip[s2]
                    out_ptr[li] = (ip + 1) % out_n[li]
                    r._transmit(now, ip, slot_vc[s2], send_fn, credit_fn)
                    moved += 1
            i = j
        return moved

    # ------------------------------------------------------------------ #
    # Array-backed observation helpers
    # ------------------------------------------------------------------ #

    def router_occupancy(self) -> Optional[np.ndarray]:
        """Per-router buffered-flit counts from the occupancy mirror.

        One ``reduceat`` over the flat array instead of a Python loop over
        every port of every router (the telemetry sampling path). Returns
        ``None`` when any router owns zero slots (``reduceat`` cannot
        express empty segments) -- callers fall back to the object loop.
        """
        if not self.supported or self.n_slots == 0:
            return None
        base = self.vslot_base
        if base.size > 1 and (base[1:] == base[:-1]).any():
            return None
        if base.size and int(base[-1]) == self.n_slots:
            return None
        return np.add.reduceat(self.occ, base)
