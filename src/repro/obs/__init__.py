"""Live run observability: event bus, structured logging, exporters.

``repro.obs`` turns the execution engine from a black box into a fleet
you can watch while it runs:

- **event bus** (:mod:`repro.obs.bus`) -- workers publish per-run
  lifecycle events (:mod:`repro.obs.events`): ``run_started``,
  in-flight ``heartbeat``\\ s (cycle, packets, active-set size, ETA,
  windowed-telemetry snapshots), ``run_finished``. Serial runs publish
  inline; pool workers publish over a ``multiprocessing.Queue`` pumped
  by a parent drain thread.
- **sampling hook** (:mod:`repro.obs.sampler`) -- a
  :class:`RunObserver` rides the simulator's step loop behind the same
  zero-overhead ``is not None`` guard as the tracer and is strictly
  read-only: observed runs are bit-identical to unobserved ones (CI
  locks this with a golden ``repro diff`` at 0%).
- **structured logging** (:mod:`repro.obs.log`) -- JSON-lines with
  correlation fields, opt-in via ``--log-json`` / ``REPRO_LOG=json``;
  the default human mode renders exactly like the stderr prints it
  replaced.
- **hub + exporters + live view** (:mod:`repro.obs.hub`,
  :mod:`repro.obs.exporters`, :mod:`repro.obs.live`) -- fleet state with
  heartbeat-based stall detection, an OpenMetrics textfile and a JSON
  status document regenerated on every bus event (the payload a future
  SSE endpoint will stream), and the ``--live`` in-place progress table.

See ``docs/observability.md`` ("Live observability") for the full tour.
"""

from repro.obs.bus import (
    BusDrain,
    InlineBus,
    QueueBus,
    clear_worker_bus,
    install_worker_bus,
    worker_bus,
)
from repro.obs.events import (
    EVENT_KINDS,
    HEARTBEAT,
    OBS_SCHEMA,
    PHASES,
    RUN_FINISHED,
    RUN_STARTED,
    STALL,
    is_event,
    make_event,
    run_id,
)
from repro.obs.exporters import OpenMetricsExporter, StatusExporter
from repro.obs.hub import DEFAULT_STALL_AFTER_S, ObservationHub, RunState
from repro.obs.live import LiveView
from repro.obs.log import (
    ContextLogger,
    HumanFormatter,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.sampler import DEFAULT_SAMPLE_EVERY, RunObserver

__all__ = [
    "BusDrain",
    "ContextLogger",
    "DEFAULT_SAMPLE_EVERY",
    "DEFAULT_STALL_AFTER_S",
    "EVENT_KINDS",
    "HEARTBEAT",
    "HumanFormatter",
    "InlineBus",
    "JsonLinesFormatter",
    "LiveView",
    "OBS_SCHEMA",
    "ObservationHub",
    "OpenMetricsExporter",
    "PHASES",
    "QueueBus",
    "RUN_FINISHED",
    "RUN_STARTED",
    "RunObserver",
    "RunState",
    "STALL",
    "StatusExporter",
    "clear_worker_bus",
    "configure_logging",
    "get_logger",
    "install_worker_bus",
    "is_event",
    "make_event",
    "run_id",
    "worker_bus",
]
