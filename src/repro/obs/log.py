"""Structured logging for the repro toolchain.

One logging setup serves two audiences:

* **humans** (the default) -- diagnostic lines on stderr, formatted as
  plain messages exactly like the bare ``print(..., file=sys.stderr)``
  calls they replace (warnings and errors get a ``level:`` prefix);
* **machines** (opt-in) -- one strict-JSON object per line with
  correlation fields (``run`` digest, ``label``, ``worker``, ``phase``,
  ...) carried as first-class keys, so a fleet of workers can be grepped
  / ``jq``-ed by spec.

JSON mode is opt-in via the ``--log-json`` CLI flag or the ``REPRO_LOG``
environment variable (``REPRO_LOG=json``; ``human`` forces the default;
``off`` silences the repro logger entirely; an optional ``:LEVEL``
suffix, e.g. ``json:debug``, sets the threshold).

Everything here is stdlib-only and import-light on purpose: this module
is imported by hot-path-adjacent code (``repro.runtime.spec``) and must
never create an import cycle with the runtime layer.
"""

from __future__ import annotations

import json
import logging
import math
import sys
import os
from typing import Dict, Optional

#: The package logger every repro module hangs off.
ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not payload -- anything else
#: found on a record (i.e. passed via ``extra=``) is a correlation field
#: and lands in the JSON document.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


def _json_safe(value):
    """Local non-finite-float scrub (strict JSON, no runtime import)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class JsonLinesFormatter(logging.Formatter):
    """One strict-JSON object per record; ``extra=`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, object] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in doc:
                continue
            doc[key] = value
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(
            _json_safe(doc), sort_keys=True, default=str, allow_nan=False
        )


class HumanFormatter(logging.Formatter):
    """Message-only rendering, matching the prints this layer replaced.

    Warnings and errors are prefixed (``warning: ...``) so they stay
    recognisable in a scrolling stderr stream; info/debug lines pass
    through verbatim.
    """

    def format(self, record: logging.LogRecord) -> str:
        msg = record.getMessage()
        if record.exc_info:
            msg = f"{msg}\n{self.formatException(record.exc_info)}"
        if record.levelno >= logging.WARNING:
            return f"{record.levelname.lower()}: {msg}"
        return msg


class _DynamicStderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is *at emit time*.

    A plain ``StreamHandler(sys.stderr)`` captures the stream object once
    at configure time and keeps writing to it forever -- invisible to
    pytest's ``capsys`` and to any later redirection. Resolving the
    stream per record keeps the logger byte-compatible with the
    ``print(..., file=sys.stderr)`` calls it replaced.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - mirrors logging.Handler
            self.handleError(record)


_configured: Optional[bool] = None  # None = never configured; else json flag


def _env_config() -> tuple[Optional[bool], Optional[int]]:
    """Parse ``REPRO_LOG`` into ``(json_mode, level)`` (None = default)."""
    raw = os.environ.get("REPRO_LOG", "").strip().lower()
    if not raw:
        return None, None
    mode, _, level_name = raw.partition(":")
    json_mode: Optional[bool] = None
    level: Optional[int] = None
    if mode in ("json", "jsonl"):
        json_mode = True
    elif mode in ("human", "text", "plain"):
        json_mode = False
    elif mode in ("off", "0", "none"):
        level = logging.CRITICAL + 10  # silences everything
        json_mode = False
    if level_name:
        level = getattr(logging, level_name.upper(), None) or level
    return json_mode, level


def configure_logging(
    json_mode: Optional[bool] = None,
    level: Optional[int] = None,
    force: bool = False,
) -> logging.Logger:
    """Install the repro log handler (idempotent).

    ``json_mode=None`` defers to ``REPRO_LOG`` and defaults to human
    format. Re-invocation with the same effective mode is a no-op;
    passing ``force=True`` (or a different explicit mode) reconfigures,
    which is what the CLI's ``--log-json`` does after an implicit
    human-mode setup.
    """
    global _configured
    env_mode, env_level = _env_config()
    if json_mode is None:
        json_mode = env_mode if env_mode is not None else False
    if level is None:
        level = env_level if env_level is not None else logging.INFO
    logger = logging.getLogger(ROOT_LOGGER)
    if _configured == json_mode and not force:
        return logger
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = _DynamicStderrHandler()
    handler.setFormatter(JsonLinesFormatter() if json_mode else HumanFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    _configured = json_mode
    return logger


class ContextLogger(logging.LoggerAdapter):
    """LoggerAdapter that merges bound correlation fields into ``extra``.

    Per-call ``extra=`` keys win over bound context, so a logger bound to
    a run digest can still override ``phase`` per message.
    """

    def process(self, msg, kwargs):
        extra = dict(self.extra or {})
        extra.update(kwargs.get("extra") or {})
        kwargs["extra"] = extra
        return msg, kwargs

    def bind(self, **context) -> "ContextLogger":
        merged = dict(self.extra or {})
        merged.update(context)
        return ContextLogger(self.logger, merged)


def get_logger(name: str = ROOT_LOGGER, **context) -> ContextLogger:
    """A context-carrying logger below the repro root.

    Lazily installs the default (human) handler on first use so replaced
    ``print`` diagnostics keep appearing without any explicit setup;
    ``configure_logging(json_mode=True)`` upgrades the whole tree to
    JSON lines at any point.
    """
    if _configured is None:
        configure_logging()
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return ContextLogger(logging.getLogger(name), context)
