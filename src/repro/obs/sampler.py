"""The in-loop sampling hook: per-run heartbeats from inside the cycle loop.

A :class:`RunObserver` rides on :class:`repro.noc.simulator.Simulator`
behind the same zero-overhead discipline as the tracer: the step loop
pays one ``is not None`` check per cycle, and the observer itself is
**read-only** -- it looks at the clock, the stats counters, the active
sets and the network occupancy, and never touches simulation state or
any RNG stream. An observed run is therefore bit-identical to an
unobserved one by construction (and the test suite locks it).

Sampling is cycle-strided (``every`` cycles) with a ``>=`` threshold
rather than a modulo, so idle fast-forward jumps cannot starve the
heartbeat: the first stepped cycle at or past the due point emits.
The observer is *not* a wake source -- a quiescent network fast-forwards
exactly as it would unobserved (skips are wall-clock-instant, so no
heartbeat gap a stall detector would care about can accumulate).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

from repro.obs.events import (
    HEARTBEAT,
    RUN_FINISHED,
    RUN_STARTED,
    make_event,
    run_id,
)

#: Default heartbeat stride in cycles (CLI: ``--heartbeat-cycles``).
DEFAULT_SAMPLE_EVERY = 1000


class RunObserver:
    """Emits the lifecycle of one executed spec onto an event bus.

    Parameters
    ----------
    publish:
        ``publish(event_dict)`` -- an :class:`~repro.obs.bus.InlineBus`
        or :class:`~repro.obs.bus.QueueBus` bound method.
    digest, label, tag:
        Run identity (correlation fields on every event).
    every:
        Heartbeat stride in simulated cycles (>= 1).
    target_cycles:
        The run's cycle budget (measurement window + drain budget) used
        for progress ratios and ETA; ``0`` disables both.
    min_interval_s:
        Optional wall-clock floor between heartbeats: a very fine stride
        on a very fast simulation emits at most one heartbeat per
        interval. ``0`` (default) emits strictly by stride, which keeps
        event counts deterministic for tests.
    """

    #: Simulator treats a falsy observer like ``None`` (tracer parity).
    enabled = True

    def __init__(
        self,
        publish: Callable[[Dict[str, object]], None],
        digest: str,
        label: str,
        tag: str = "",
        every: int = DEFAULT_SAMPLE_EVERY,
        target_cycles: int = 0,
        min_interval_s: float = 0.0,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.publish = publish
        self.run = run_id(digest)
        self.label = label
        self.tag = tag
        self.every = every
        self.target_cycles = int(target_cycles)
        self.min_interval_s = min_interval_s
        self.worker = os.getpid()
        #: Next cycle at which :meth:`sample` is due; the simulator's
        #: guard is ``now >= observer.next_cycle``.
        self.next_cycle = every
        self.seq = 0
        self.heartbeats = 0
        #: Optional :class:`repro.telemetry.windows.WindowedAggregator`
        #: whose running snapshot rides along in each heartbeat.
        self.windows = None
        self._t0 = time.perf_counter()
        self._last_emit_wall = 0.0
        self.sim = None

    # ------------------------------------------------------------------ #

    def bind(self, sim) -> None:
        """Attach to a simulator (called by ``Simulator.__init__``)."""
        self.sim = sim

    def _emit(self, kind: str, **data) -> None:
        self.seq += 1
        self.publish(
            make_event(
                kind,
                run=self.run,
                label=self.label,
                tag=self.tag,
                worker=self.worker,
                seq=self.seq,
                **data,
            )
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def on_run_started(self, spec) -> None:
        """Announce the run before topology build (phase ``build``)."""
        self._t0 = time.perf_counter()
        self._emit(
            RUN_STARTED,
            phase="build",
            topology=spec.topology,
            pattern=spec.traffic.pattern,
            rate=spec.traffic.rate,
            cycles=spec.cycles,
            target_cycles=self.target_cycles,
        )

    def sample(self, sim, now: int) -> None:
        """One heartbeat: in-flight progress, read-only by contract."""
        self.next_cycle = now + self.every
        wall = time.perf_counter() - self._t0
        if self.min_interval_s and (
            wall - self._last_emit_wall < self.min_interval_s
        ):
            return
        self._last_emit_wall = wall
        self.heartbeats += 1
        stats = sim.stats
        cps = now / wall if wall > 0 else None
        target = self.target_cycles
        eta = None
        if cps and target > now:
            eta = round((target - now) / cps, 1)
        # Draining <=> the traffic process is parked on the side.
        phase = "drain" if sim._paused_traffic is not None else "run"
        data: Dict[str, object] = {
            "phase": phase,
            "cycle": now,
            "target_cycles": target,
            "injected": stats.packets_created,
            "ejected": stats.packets_ejected,
            "occupancy": sim.network.total_occupancy(),
            "active_routers": len(sim._active_routers),
            "active_nis": len(sim._active_nis),
            "wall_s": round(wall, 3),
            "cycles_per_sec": round(cps, 1) if cps else None,
            "eta_s": eta,
        }
        if self.windows is not None:
            data["windows"] = self.windows.snapshot()
        self._emit(HEARTBEAT, **data)

    def on_run_finished(
        self,
        wall_s: float,
        summary: Optional[Dict[str, object]] = None,
        cache_hit: bool = False,
    ) -> None:
        summary = summary or {}
        self._emit(
            RUN_FINISHED,
            phase="finished",
            wall_s=round(wall_s, 4),
            cache_hit=cache_hit,
            heartbeats=self.heartbeats,
            latency_mean=summary.get("latency_mean"),
            throughput=summary.get("throughput"),
            spare_escapes=summary.get("spare_escapes"),
            drain_timeouts=summary.get("spare_drain_timeouts"),
        )
