"""The parent-side observation hub: fleet state, stall detection, fan-out.

One :class:`ObservationHub` per executor invocation. Every bus event --
whether it arrived inline (serial) or over the multiprocessing queue --
lands in :meth:`handle`, which folds it into per-run state and fans the
fresh snapshot out to the exporters, the live view, and any extended
progress subscribers. A background watchdog thread ages the in-flight
runs against ``stall_after_s`` and raises a structured warning naming
the spec when a worker goes quiet -- the wall-clock complement to the
in-sim deadlock watchdog (which cannot fire if the worker process itself
is wedged or the host is thrashing).

Everything is observation plumbing: the hub never feeds anything back
into the executing simulations.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.events import (
    HEARTBEAT,
    RUN_FINISHED,
    RUN_STARTED,
    STALL,
    make_event,
    run_id,
)
from repro.obs.log import _json_safe, get_logger
from repro.obs.sampler import DEFAULT_SAMPLE_EVERY

#: Default wall-seconds without a heartbeat before a run is called stalled.
DEFAULT_STALL_AFTER_S = 30.0


@dataclass
class RunState:
    """Last known in-flight state of one run (keyed by digest prefix)."""

    run: str
    label: str = ""
    tag: str = ""
    worker: Optional[int] = None
    phase: str = "pending"
    cycle: int = 0
    target_cycles: int = 0
    injected: int = 0
    ejected: int = 0
    occupancy: int = 0
    heartbeats: int = 0
    wall_s: Optional[float] = None
    cycles_per_sec: Optional[float] = None
    eta_s: Optional[float] = None
    cache_hit: bool = False
    stalled: bool = False
    started_ts: Optional[float] = None
    last_ts: Optional[float] = None
    latency_mean: Optional[float] = None
    throughput: Optional[float] = None
    spare_escapes: Optional[float] = None
    drain_timeouts: Optional[float] = None
    windows: Optional[Dict[str, object]] = None
    last_seq: int = 0

    @property
    def progress(self) -> Optional[float]:
        if self.phase == "finished":
            return 1.0
        if self.target_cycles > 0:
            return min(1.0, self.cycle / self.target_cycles)
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "run": self.run,
            "label": self.label,
            "tag": self.tag,
            "worker": self.worker,
            "phase": self.phase,
            "cycle": self.cycle,
            "target_cycles": self.target_cycles,
            "progress": self.progress,
            "injected": self.injected,
            "ejected": self.ejected,
            "occupancy": self.occupancy,
            "heartbeats": self.heartbeats,
            "wall_s": self.wall_s,
            "cycles_per_sec": self.cycles_per_sec,
            "eta_s": self.eta_s,
            "cache_hit": self.cache_hit,
            "stalled": self.stalled,
            "started_ts": self.started_ts,
            "last_ts": self.last_ts,
            "latency_mean": self.latency_mean,
            "throughput": self.throughput,
            "spare_escapes": self.spare_escapes,
            "drain_timeouts": self.drain_timeouts,
            "windows": self.windows,
        }


class ObservationHub:
    """Aggregates observation events for one executor batch.

    Parameters
    ----------
    sample_every:
        Heartbeat stride (cycles) handed to worker-side observers.
    stall_after_s:
        Wall-seconds without a heartbeat before an in-flight run is
        flagged stalled (a structured warning naming the spec). ``0``
        disables the watchdog.
    live:
        Optional :class:`repro.obs.live.LiveView` re-rendered per event.
    exporters:
        Objects with ``update(snapshot_dict)`` -- regenerated on every
        bus event (OpenMetrics textfile, JSON status document, ...).
    clock:
        Injectable wall clock (tests).
    """

    def __init__(
        self,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        stall_after_s: float = DEFAULT_STALL_AFTER_S,
        live=None,
        exporters=(),
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.sample_every = int(sample_every)
        self.stall_after_s = float(stall_after_s)
        self.live = live
        self.exporters = list(exporters)
        self.clock = clock
        self.log = get_logger("repro.obs")
        self.states: Dict[str, RunState] = {}
        self.total = 0
        self.done = 0
        self.heartbeats = 0
        self.events_handled = 0
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        self._lock = threading.RLock()
        self._watchdog: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Batch lifecycle (driven by the executor)
    # ------------------------------------------------------------------ #

    def begin(self, specs) -> None:
        """Register the batch (idempotent across executor invocations)."""
        with self._lock:
            self.total += len(specs)
            for spec in specs:
                rid = run_id(spec.digest())
                if rid not in self.states:
                    self.states[rid] = RunState(
                        run=rid, label=spec.label(), tag=spec.tag
                    )
        if self.stall_after_s > 0 and self._watchdog is None:
            self._stop.clear()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="repro-obs-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    def end(self) -> None:
        """Stop the watchdog and flush a final snapshot."""
        if self._watchdog is not None:
            self._stop.set()
            self._watchdog.join(2.0)
            self._watchdog = None
        snap = self.snapshot()
        for exporter in self.exporters:
            try:
                exporter.update(snap)
            except Exception:
                self.log.warning(
                    f"observability exporter {exporter!r} failed",
                    exc_info=True,
                )
        if self.live is not None:
            self.live.close(snap)

    def subscribe(self, fn: Callable[[Dict[str, object]], None]) -> None:
        """Receive every handled event (extended progress callbacks)."""
        self._subscribers.append(fn)

    # ------------------------------------------------------------------ #
    # Event intake
    # ------------------------------------------------------------------ #

    def handle(self, ev: Dict[str, object]) -> None:
        """Fold one bus event into fleet state and fan out the snapshot."""
        with self._lock:
            self.events_handled += 1
            rid = str(ev.get("run"))
            st = self.states.get(rid)
            if st is None:
                st = self.states[rid] = RunState(run=rid)
            if ev.get("label"):
                st.label = str(ev["label"])
            if ev.get("tag"):
                st.tag = str(ev["tag"])
            if ev.get("worker") is not None:
                st.worker = ev["worker"]
            seq = int(ev.get("seq") or 0)
            if seq:
                st.last_seq = max(st.last_seq, seq)
            # Stamp arrival with the hub's own clock (not the event's
            # worker-side ``ts``): staleness must be measured in one clock
            # domain, immune to worker clock skew.
            ts = self.clock()
            st.last_ts = ts
            kind = ev.get("event")
            if kind == RUN_STARTED:
                st.phase = str(ev.get("phase") or "build")
                st.started_ts = ts
                st.target_cycles = int(ev.get("target_cycles") or 0)
                st.stalled = False
            elif kind == HEARTBEAT:
                self.heartbeats += 1
                st.phase = str(ev.get("phase") or "run")
                st.heartbeats += 1
                st.stalled = False
                for attr in (
                    "cycle", "target_cycles", "injected", "ejected",
                    "occupancy",
                ):
                    if ev.get(attr) is not None:
                        setattr(st, attr, int(ev[attr]))
                for attr in ("wall_s", "cycles_per_sec", "eta_s"):
                    if ev.get(attr) is not None:
                        setattr(st, attr, float(ev[attr]))
                if ev.get("windows") is not None:
                    st.windows = ev["windows"]
            elif kind == RUN_FINISHED:
                if st.phase != "finished":
                    self.done += 1
                st.phase = "finished"
                st.stalled = False
                st.cache_hit = bool(ev.get("cache_hit"))
                if ev.get("wall_s") is not None:
                    st.wall_s = float(ev["wall_s"])
                if ev.get("latency_mean") is not None:
                    st.latency_mean = float(ev["latency_mean"])
                if ev.get("throughput") is not None:
                    st.throughput = float(ev["throughput"])
                if ev.get("spare_escapes") is not None:
                    st.spare_escapes = float(ev["spare_escapes"])
                if ev.get("drain_timeouts") is not None:
                    st.drain_timeouts = float(ev["drain_timeouts"])
                st.eta_s = 0.0
            elif kind == STALL:
                st.stalled = True
        self._refresh(event=ev)

    def note_finished(self, result, wall_s: Optional[float] = None) -> None:
        """Parent-side completion (cache hits never touch a worker)."""
        summary = result.summary or {}
        self.handle(
            make_event(
                RUN_FINISHED,
                run=run_id(result.digest),
                label=result.spec.label(),
                tag=result.spec.tag,
                worker=None,
                phase="finished",
                wall_s=wall_s if wall_s is not None else result.wall_s,
                cache_hit=result.cache_hit,
                latency_mean=summary.get("latency_mean"),
                throughput=summary.get("throughput"),
                spare_escapes=summary.get("spare_escapes"),
                drain_timeouts=summary.get("spare_drain_timeouts"),
            )
        )

    # ------------------------------------------------------------------ #
    # Stall detection
    # ------------------------------------------------------------------ #

    def check_stalls(self) -> List[str]:
        """Flag in-flight runs whose last beat is older than the budget.

        Returns the run ids *newly* flagged this call; each gets one
        structured warning (re-flagging waits for the run to beat again).
        """
        if self.stall_after_s <= 0:
            return []
        now = self.clock()
        newly: List[str] = []
        with self._lock:
            for st in self.states.values():
                if st.phase in ("pending", "finished") or st.stalled:
                    continue
                last = st.last_ts or st.started_ts
                if last is None:
                    continue
                idle = now - last
                if idle > self.stall_after_s:
                    st.stalled = True
                    newly.append(st.run)
        for rid in newly:
            st = self.states[rid]
            self.log.warning(
                f"no heartbeat from {st.label or rid} for "
                f"{self.stall_after_s:g}s (worker {st.worker}, "
                f"phase {st.phase}, cycle {st.cycle})",
                extra={
                    "run": rid,
                    "label": st.label,
                    "tag": st.tag,
                    "worker": st.worker,
                    "phase": st.phase,
                    "cycle": st.cycle,
                    "stall_after_s": self.stall_after_s,
                },
            )
            self._refresh(
                event=make_event(
                    STALL,
                    run=rid,
                    label=st.label,
                    tag=st.tag,
                    worker=st.worker,
                    idle_s=round(now - (st.last_ts or now), 1),
                )
            )
        return newly

    def _watchdog_loop(self) -> None:
        interval = max(0.2, min(1.0, self.stall_after_s / 4.0))
        while not self._stop.wait(interval):
            try:
                self.check_stalls()
            except Exception:  # pragma: no cover - must never kill the run
                pass

    # ------------------------------------------------------------------ #
    # Snapshot + fan-out
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """The JSON status payload (strict-JSON safe)."""
        with self._lock:
            inflight = sum(
                1
                for st in self.states.values()
                if st.phase not in ("pending", "finished")
            )
            stalled = sum(1 for st in self.states.values() if st.stalled)
            return _json_safe(
                {
                    "ts": self.clock(),
                    "total": self.total,
                    "done": self.done,
                    "inflight": inflight,
                    "stalled": stalled,
                    "heartbeats": self.heartbeats,
                    "runs": {
                        rid: st.to_dict() for rid, st in self.states.items()
                    },
                }
            )

    def _refresh(
        self, event: Optional[Dict[str, object]] = None, force: bool = False
    ) -> None:
        snap = self.snapshot() if (self.exporters or self.live) else None
        if snap is not None:
            for exporter in self.exporters:
                try:
                    exporter.update(snap)
                except Exception:
                    self.log.warning(
                        f"observability exporter {exporter!r} failed",
                        exc_info=True,
                    )
            if self.live is not None:
                self.live.render(snap, force=force)
        if event is not None:
            for fn in self._subscribers:
                try:
                    fn(event)
                except Exception:
                    pass
