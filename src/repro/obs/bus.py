"""The worker -> parent event bus.

Two transports, one contract (``publish(event_dict)``):

* :class:`InlineBus` -- the serial path. Events are dispatched to
  subscribers synchronously in the publishing (= executing) process; no
  threads, no queues, deterministic ordering.
* :class:`QueueBus` -- the multiprocessing path. Workers ``put_nowait``
  onto a shared :class:`multiprocessing.Queue`; the parent pumps it with
  a :class:`BusDrain` thread. Publishing is fire-and-forget: a full or
  broken queue **drops** the event (and counts it) rather than ever
  blocking -- or worse, failing -- the simulation. Observability must
  not be able to take a run down.

The pool-worker side has no handle on the executor object, so the queue
is smuggled in via the pool initializer (:func:`install_worker_bus`) and
picked up by ``repro.runtime.executor._pool_worker`` through
:func:`worker_bus`.
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.events import is_event

#: Parent-side sentinel pushed to unblock and stop the drain thread.
_STOP = "__obs_stop__"


class InlineBus:
    """Synchronous in-process bus (the ``jobs=1`` path)."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        self.published = 0

    def subscribe(self, fn: Callable[[Dict[str, object]], None]) -> None:
        self._subscribers.append(fn)

    def publish(self, event: Dict[str, object]) -> None:
        self.published += 1
        for fn in self._subscribers:
            fn(event)


class QueueBus:
    """Worker-side wrapper over a shared ``multiprocessing.Queue``."""

    def __init__(self, mp_queue) -> None:
        self.queue = mp_queue
        self.published = 0
        self.dropped = 0

    def publish(self, event: Dict[str, object]) -> None:
        try:
            self.queue.put_nowait(event)
            self.published += 1
        except Exception:
            # Full queue / torn-down manager: observation is best-effort,
            # the simulation result must never depend on it.
            self.dropped += 1


class BusDrain:
    """Parent-side pump: queue -> ``handle(event)`` on a daemon thread.

    ``on_tick`` fires whenever the queue stays empty for ``tick_s``
    seconds -- the hook the stall detector hangs off (wall time keeps
    advancing even when no worker is saying anything, which is exactly
    the situation stall detection exists for).
    """

    def __init__(
        self,
        mp_queue,
        handle: Callable[[Dict[str, object]], None],
        on_tick: Optional[Callable[[], None]] = None,
        tick_s: float = 1.0,
    ) -> None:
        self.queue = mp_queue
        self.handle = handle
        self.on_tick = on_tick
        self.tick_s = tick_s
        self.drained = 0
        self.malformed = 0
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "BusDrain":
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-drain", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Flush remaining events, then join the pump thread."""
        if self._thread is None:
            return
        try:
            self.queue.put(_STOP)
        except Exception:
            pass
        self._thread.join(timeout)
        self._thread = None

    def _loop(self) -> None:
        while True:
            try:
                item = self.queue.get(timeout=self.tick_s)
            except (_queue.Empty, OSError, EOFError):
                if self.on_tick is not None:
                    try:
                        self.on_tick()
                    except Exception:
                        pass
                continue
            if item == _STOP:
                break
            if not is_event(item):
                self.malformed += 1
                continue
            self.drained += 1
            try:
                self.handle(item)
            except Exception:
                # A broken exporter/renderer must not kill the pump.
                self.malformed += 1


# --------------------------------------------------------------------- #
# Pool-worker plumbing
# --------------------------------------------------------------------- #

#: (publish callable, sample_every cycles) for the current pool worker.
_worker_bus: Optional[Tuple[Callable[[Dict[str, object]], None], int]] = None


def install_worker_bus(mp_queue, sample_every: int) -> None:
    """Pool initializer: bind this worker process to the shared queue."""
    global _worker_bus
    _worker_bus = (QueueBus(mp_queue).publish, int(sample_every))


def clear_worker_bus() -> None:
    """Drop the worker binding (tests; fork-inherited state hygiene)."""
    global _worker_bus
    _worker_bus = None


def worker_bus() -> Optional[Tuple[Callable[[Dict[str, object]], None], int]]:
    """The worker's ``(publish, sample_every)`` pair, if observing."""
    return _worker_bus
