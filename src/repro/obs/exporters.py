"""Snapshot exporters: OpenMetrics textfile + JSON status document.

Both exporters consume the same input -- the hub's *status snapshot*
(:meth:`repro.obs.hub.ObservationHub.snapshot`) -- and regenerate their
whole artifact on every bus event. Writes are atomic (temp file +
rename), so a Prometheus node-exporter textfile collector or a polling
dashboard never sees a torn file. The JSON status document is exactly
the payload a future SSE/WebSocket endpoint would push per event, which
is the point: the service layer only has to stream what the CLI already
materialises on disk.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Union

#: Prefix of every exported metric family.
METRIC_PREFIX = "repro"


def _write_atomic(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _escape_label(value: str) -> str:
    """OpenMetrics label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


class OpenMetricsExporter:
    """Prometheus/OpenMetrics textfile snapshot of the run fleet.

    Families (all ``{METRIC_PREFIX}_`` prefixed; see
    ``docs/observability.md`` for the full catalogue):

    - ``runs`` / ``runs_done`` / ``runs_inflight`` / ``runs_stalled``
      -- fleet-level gauges;
    - ``heartbeats_total`` -- events drained so far (counter);
    - per-run gauges labelled ``{run=..., label=...}``: ``run_cycle``,
      ``run_target_cycles``, ``run_progress_ratio``,
      ``run_packets_injected``, ``run_packets_ejected``,
      ``run_occupancy_flits``, ``run_cycles_per_sec``,
      ``run_eta_seconds``, ``run_heartbeat_age_seconds``,
      ``run_stalled``.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.writes = 0

    def update(self, snap: Dict[str, object]) -> None:
        self.writes += 1
        _write_atomic(self.path, self.render(snap))

    def render(self, snap: Dict[str, object]) -> str:
        p = METRIC_PREFIX
        now = snap.get("ts") or time.time()
        lines: List[str] = []

        def gauge(name: str, value, labels: str = "") -> None:
            if not _finite(value):
                return
            lines.append(f"{p}_{name}{labels} {value:g}")

        lines.append(f"# TYPE {p}_runs gauge")
        gauge("runs", snap.get("total", 0))
        lines.append(f"# TYPE {p}_runs_done gauge")
        gauge("runs_done", snap.get("done", 0))
        lines.append(f"# TYPE {p}_runs_inflight gauge")
        gauge("runs_inflight", snap.get("inflight", 0))
        lines.append(f"# TYPE {p}_runs_stalled gauge")
        gauge("runs_stalled", snap.get("stalled", 0))
        lines.append(f"# TYPE {p}_heartbeats_total counter")
        gauge("heartbeats_total", snap.get("heartbeats", 0))

        per_run = (
            ("run_cycle", "cycle"),
            ("run_target_cycles", "target_cycles"),
            ("run_progress_ratio", "progress"),
            ("run_packets_injected", "injected"),
            ("run_packets_ejected", "ejected"),
            ("run_occupancy_flits", "occupancy"),
            ("run_cycles_per_sec", "cycles_per_sec"),
            ("run_eta_seconds", "eta_s"),
            ("run_spare_escapes", "spare_escapes"),
            ("run_drain_timeouts", "drain_timeouts"),
        )
        runs: Dict[str, Dict[str, object]] = snap.get("runs") or {}
        for family, key in per_run:
            emitted_type = False
            for rid, st in runs.items():
                value = st.get(key)
                if not _finite(value):
                    continue
                if not emitted_type:
                    lines.append(f"# TYPE {p}_{family} gauge")
                    emitted_type = True
                labels = (
                    f'{{run="{_escape_label(rid)}",'
                    f'label="{_escape_label(st.get("label", ""))}"}}'
                )
                gauge(family, value, labels)
        emitted_type = False
        for rid, st in runs.items():
            last = st.get("last_ts")
            if not _finite(last) or st.get("phase") == "finished":
                continue
            if not emitted_type:
                lines.append(f"# TYPE {p}_run_heartbeat_age_seconds gauge")
                emitted_type = True
            labels = (
                f'{{run="{_escape_label(rid)}",'
                f'label="{_escape_label(st.get("label", ""))}"}}'
            )
            gauge("run_heartbeat_age_seconds", max(0.0, now - last), labels)
        emitted_type = False
        for rid, st in runs.items():
            if not emitted_type:
                lines.append(f"# TYPE {p}_run_stalled gauge")
                emitted_type = True
            labels = (
                f'{{run="{_escape_label(rid)}",'
                f'label="{_escape_label(st.get("label", ""))}"}}'
            )
            gauge("run_stalled", 1 if st.get("stalled") else 0, labels)

        lines.append("# EOF")
        return "\n".join(lines) + "\n"


class StatusExporter:
    """The live JSON status document (the future SSE payload).

    The file is the hub snapshot verbatim: fleet counters plus the last
    known state of every run, strict JSON (non-finite floats already
    scrubbed by the hub).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.writes = 0

    def update(self, snap: Dict[str, object]) -> None:
        self.writes += 1
        _write_atomic(
            self.path,
            json.dumps(snap, sort_keys=True, default=str, allow_nan=False)
            + "\n",
        )
