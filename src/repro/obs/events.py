"""The observation event schema: what workers tell the parent.

Events are plain JSON-safe dicts (cheap to pickle through a
``multiprocessing.Queue``, trivially serialisable into the status
document). Every event carries the correlation envelope:

``event``    one of :data:`EVENT_KINDS`
``run``      the spec digest prefix (:data:`RUN_ID_LEN` hex chars)
``label``    human-readable spec label (``topology/pattern@rate x cycles``)
``tag``      the spec's variant tag (may be empty)
``worker``   OS pid of the emitting process
``seq``      per-run monotone sequence number (gap detection)
``ts``       unix wall-clock time at emission

plus a per-kind payload:

``run_started``   ``topology``, ``pattern``, ``rate``, ``cycles``,
                  ``target_cycles`` (cycles + drain budget)
``heartbeat``     ``cycle``, ``target_cycles``, ``phase`` (``run`` /
                  ``drain``), ``injected`` / ``ejected`` packet counts,
                  ``occupancy`` (flits buffered network-wide),
                  ``active_routers`` / ``active_nis`` (active-set sizes),
                  ``wall_s``, ``cycles_per_sec``, ``eta_s``, and --
                  when windowed telemetry is attached -- a ``windows``
                  snapshot (:meth:`WindowedAggregator.snapshot`)
``run_finished``  ``wall_s``, ``cache_hit``, ``latency_mean``,
                  ``throughput``, ``spare_escapes``, ``drain_timeouts``
                  (``None`` when unavailable; the last two surface the
                  spare-channel drain state machine for runs with a
                  reconfiguration controller)
``stall``         ``idle_s`` since the last heartbeat (parent-emitted)

The schema is versioned (:data:`OBS_SCHEMA`) and additive by convention:
consumers must ignore keys they do not know.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: Bump on breaking changes to the event envelope.
OBS_SCHEMA = 1

#: Hex digits of the spec digest used as the run correlation id.
RUN_ID_LEN = 12

RUN_STARTED = "run_started"
HEARTBEAT = "heartbeat"
RUN_FINISHED = "run_finished"
STALL = "stall"

EVENT_KINDS = (RUN_STARTED, HEARTBEAT, RUN_FINISHED, STALL)

#: Heartbeat phases, in lifecycle order.
PHASES = ("build", "run", "drain", "finished")


def run_id(digest: str) -> str:
    """The correlation id for a spec digest (stable truncation)."""
    return digest[:RUN_ID_LEN]


def make_event(
    kind: str,
    run: str,
    label: str,
    tag: str = "",
    worker: Optional[int] = None,
    seq: int = 0,
    **data,
) -> Dict[str, object]:
    """Assemble one observation event (envelope + payload)."""
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown observation event kind {kind!r}")
    ev: Dict[str, object] = {
        "event": kind,
        "obs_schema": OBS_SCHEMA,
        "run": run,
        "label": label,
        "tag": tag,
        "worker": worker,
        "seq": seq,
        "ts": time.time(),
    }
    ev.update(data)
    return ev


def is_event(obj: object) -> bool:
    """Cheap structural check used by the parent-side drain loop."""
    return (
        isinstance(obj, dict)
        and obj.get("event") in EVENT_KINDS
        and "run" in obj
    )
