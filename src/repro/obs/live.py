"""The ``--live`` in-place progress table.

On a TTY the view redraws itself in place with ANSI cursor movement
(one table, updated on every bus event, throttled to ``interval_s``).
On a dumb stream (CI logs, pipes) it degrades to a compact one-line
summary printed at a slower cadence, so logs stay readable instead of
scrolling a table per heartbeat.

Rendering is wall-clock-throttled *display*, not data: the hub keeps
full state regardless of what the view managed to draw.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

#: Rows shown before the table truncates (in-flight runs first).
MAX_ROWS = 24

_PHASE_GLYPH = {
    "pending": ".",
    "build": "b",
    "run": ">",
    "drain": "d",
    "finished": "=",
}


def _fmt_eta(eta) -> str:
    if eta is None:
        return "-"
    eta = float(eta)
    if eta >= 90:
        return f"{eta / 60:.1f}m"
    return f"{eta:.0f}s"


class LiveView:
    """Renders hub snapshots onto a terminal (or a log-friendly stream)."""

    def __init__(
        self,
        stream=None,
        interval_s: float = 0.2,
        plain_interval_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self._stream = stream
        self.interval_s = interval_s
        self.plain_interval_s = plain_interval_s
        self.clock = clock
        self.renders = 0
        self._lines_drawn = 0
        self._last_render = 0.0

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stderr

    def _isatty(self) -> bool:
        try:
            return bool(self.stream.isatty())
        except Exception:
            return False

    # ------------------------------------------------------------------ #

    def render(self, snap: Dict[str, object], force: bool = False) -> None:
        now = self.clock()
        tty = self._isatty()
        min_gap = self.interval_s if tty else self.plain_interval_s
        if not force and now - self._last_render < min_gap:
            return
        self._last_render = now
        self.renders += 1
        if tty:
            self._render_table(snap)
        else:
            self._render_plain(snap)

    def close(self, snap: Optional[Dict[str, object]] = None) -> None:
        """Final draw; leaves the cursor below the table."""
        if snap is not None:
            self._last_render = 0.0
            self.render(snap, force=True)
        if self._isatty() and self._lines_drawn:
            self.stream.write("\n")
            self.stream.flush()
        self._lines_drawn = 0

    # ------------------------------------------------------------------ #

    def _rows(self, snap: Dict[str, object]) -> List[Dict[str, object]]:
        runs = list((snap.get("runs") or {}).values())
        order = {"run": 0, "drain": 0, "build": 1, "pending": 2, "finished": 3}
        runs.sort(
            key=lambda st: (order.get(st.get("phase"), 2), st.get("label") or "")
        )
        return runs[:MAX_ROWS]

    def _format_row(self, st: Dict[str, object], now: float) -> str:
        glyph = _PHASE_GLYPH.get(st.get("phase"), "?")
        label = (st.get("label") or st.get("run") or "")[:44]
        progress = st.get("progress")
        pct = f"{progress * 100:3.0f}%" if progress is not None else "   -"
        cycle = st.get("cycle") or 0
        target = st.get("target_cycles") or 0
        pkts = f"{st.get('injected') or 0}/{st.get('ejected') or 0}"
        cps = st.get("cycles_per_sec")
        cps_s = f"{cps:,.0f}" if cps else "-"
        eta = _fmt_eta(st.get("eta_s")) if st.get("phase") != "finished" else ""
        beat = st.get("last_ts")
        if st.get("stalled"):
            age = f"STALL {now - beat:.0f}s" if beat else "STALL"
        elif beat and st.get("phase") not in ("pending", "finished"):
            age = f"{max(0.0, now - beat):.0f}s"
        else:
            age = ""
        return (
            f" {glyph} {label:<44} {pct} {cycle:>8}/{target:<8} "
            f"{pkts:>13} {cps_s:>9} {eta:>6} {age}"
        )

    def _render_table(self, snap: Dict[str, object]) -> None:
        stream = self.stream
        now = float(snap.get("ts") or time.time())
        header = (
            f"live: {snap.get('done', 0)}/{snap.get('total', 0)} done, "
            f"{snap.get('inflight', 0)} running, "
            f"{snap.get('stalled', 0)} stalled, "
            f"{snap.get('heartbeats', 0)} heartbeats"
        )
        cols = (
            f"   {'spec':<44} {'prog':>4} {'cycle':>8}/{'target':<8} "
            f"{'pkts in/out':>13} {'cyc/s':>9} {'eta':>6} beat"
        )
        lines = [header, cols]
        lines += [self._format_row(st, now) for st in self._rows(snap)]
        if self._lines_drawn:
            stream.write(f"\x1b[{self._lines_drawn}F")  # cursor to block top
        for line in lines:
            stream.write("\x1b[2K" + line + "\n")
        # Shrinking table: blank any leftover rows, then hop back up.
        extra = self._lines_drawn - len(lines)
        if extra > 0:
            for _ in range(extra):
                stream.write("\x1b[2K\n")
            stream.write(f"\x1b[{extra}F")
        stream.flush()
        self._lines_drawn = len(lines)

    def _render_plain(self, snap: Dict[str, object]) -> None:
        """Single-line summary for non-TTY streams (CI logs)."""
        active = [
            st
            for st in (snap.get("runs") or {}).values()
            if st.get("phase") in ("run", "drain", "build")
        ]
        detail = ""
        if active:
            st = max(active, key=lambda s: s.get("cycle") or 0)
            progress = st.get("progress")
            pct = f" {progress * 100:.0f}%" if progress is not None else ""
            eta = st.get("eta_s")
            eta_s = f" eta {_fmt_eta(eta)}" if eta else ""
            detail = f" ({st.get('label')}{pct}{eta_s})"
        self.stream.write(
            f"live: {snap.get('done', 0)}/{snap.get('total', 0)} done, "
            f"{snap.get('inflight', 0)} running{detail}, "
            f"{snap.get('stalled', 0)} stalled\n"
        )
        self.stream.flush()
