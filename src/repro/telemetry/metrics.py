"""Counters, histograms and the metric registry.

Metrics are the *aggregated* half of the telemetry subsystem (events are
the other): cheap to update on hot paths, mergeable across collectors, and
flattenable into the JSONL run records. The design follows the DSENT-style
practice of attributing activity to named components: every metric is keyed
by ``(name, key)`` where ``key`` names a component or channel class
(``"c0.wg5"``, ``"C2C"``, ``"photonic"``).

Histograms use power-of-two buckets (bucket *i* holds values ``v`` with
``v.bit_length() == i``), which makes :meth:`Histogram.merge` exact and
associative -- the property the regression suite locks down so sharded
collections can be combined in any order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time float value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, v: float) -> None:
        self.value = float(v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value})"


class Histogram:
    """Power-of-two bucketed histogram of non-negative integer samples.

    Bucket ``i`` counts samples whose ``bit_length()`` is ``i`` (bucket 0
    holds zeros), i.e. bucket *i > 0* spans ``[2**(i-1), 2**i - 1]``.
    Exact count/sum/min/max are kept alongside, so means are exact and only
    percentiles are bucket-quantised.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        v = int(value)
        if v < 0:
            v = 0
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        b = v.bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Rank-interpolated ``q``-quantile estimate.

        ``q`` is in [0, 1]. The holding bucket is found by cumulative
        count, then the estimate interpolates linearly *within* the
        bucket's value span by rank position (rather than snapping to the
        bucket upper bound, which systematically over-reported by up to
        2x). Bucket spans are clamped to the observed ``min``/``max``, so
        the extremes are exact.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.count
        if target <= 0:
            return float(self.min)
        seen = 0
        for b in sorted(self.buckets):
            n = self.buckets[b]
            before = seen
            seen += n
            if seen >= target:
                lower = (1 << (b - 1)) if b else 0
                upper = (1 << b) - 1 if b else 0
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return float(lower)
                return lower + (target - before) / n * (upper - lower)
        return float(self.max)

    def merge(self, other: "Histogram") -> "Histogram":
        """Pure combination of two histograms (associative, commutative)."""
        out = Histogram()
        out.count = self.count + other.count
        out.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        out.min = min(mins) if mins else None
        out.max = max(maxs) if maxs else None
        out.buckets = dict(self.buckets)
        for b, n in other.buckets.items():
            out.buckets[b] = out.buckets.get(b, 0) + n
        return out

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.5),
            "p99": self.percentile(0.99),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self.buckets == other.buckets
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, mean={self.mean})"


class MetricRegistry:
    """Get-or-create store of counters/gauges/histograms keyed by name+key.

    Hot paths should resolve a metric once (``registry.counter(...)``) and
    hold the returned object; lookups are dict-hits but holding the handle
    is cheaper still. With no metrics registered, :meth:`as_flat_dict` is
    an empty dict -- the disabled-telemetry invariant.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], Counter] = {}
        self._gauges: Dict[Tuple[str, str], Gauge] = {}
        self._histograms: Dict[Tuple[str, str], Histogram] = {}

    def counter(self, name: str, key: str = "") -> Counter:
        k = (name, key)
        c = self._counters.get(k)
        if c is None:
            c = self._counters[k] = Counter()
        return c

    def gauge(self, name: str, key: str = "") -> Gauge:
        k = (name, key)
        g = self._gauges.get(k)
        if g is None:
            g = self._gauges[k] = Gauge()
        return g

    def histogram(self, name: str, key: str = "") -> Histogram:
        k = (name, key)
        h = self._histograms.get(k)
        if h is None:
            h = self._histograms[k] = Histogram()
        return h

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def counters(self, name: str) -> Dict[str, int]:
        """All keys registered under a counter ``name`` -> value."""
        return {k: c.value for (n, k), c in self._counters.items() if n == name}

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Pure combination of two registries (gauges: other wins)."""
        out = MetricRegistry()
        for k, c in self._counters.items():
            out._counters[k] = Counter(c.value)
        for k, c in other._counters.items():
            out.counter(*k).add(c.value)
        for k, h in self._histograms.items():
            out._histograms[k] = h.merge(Histogram())
        for k, h in other._histograms.items():
            out._histograms[k] = out.histogram(*k).merge(h)
        for src in (self._gauges, other._gauges):
            for k, g in src.items():
                out.gauge(*k).set(g.value)
        return out

    def as_flat_dict(self) -> Dict[str, Optional[float]]:
        """Flatten everything into ``"name[key]"`` -> number.

        Histograms expand into ``"name[key].count"``, ``.mean``, ``.max``
        etc. The result is JSON-safe (no NaN) and is what
        :func:`repro.runtime.records.make_record` folds into run records.
        """
        out: Dict[str, Optional[float]] = {}

        def label(name: str, key: str) -> str:
            return f"{name}[{key}]" if key else name

        for (name, key), c in sorted(self._counters.items()):
            out[label(name, key)] = c.value
        for (name, key), g in sorted(self._gauges.items()):
            out[label(name, key)] = g.value
        for (name, key), h in sorted(self._histograms.items()):
            base = label(name, key)
            for stat, v in h.as_dict().items():
                out[f"{base}.{stat}"] = v
        return out
