"""The :class:`Tracer`: cycle-level event/metric collection for one run.

The tracer is threaded through the simulator's hot paths behind a single
``is not None`` check per site -- with no tracer attached the cycle loop
does no telemetry work at all (the regression suite guards this with the
tracer's ``emits`` call counter, not wall-clock timing). With a tracer
attached it plays two roles:

* **events** -- a bounded, append-only list of :class:`TraceEvent` in
  simulation order, exportable to Chrome ``trace_event`` JSON
  (:mod:`repro.telemetry.export`);
* **metrics** -- counters/histograms in a :class:`MetricRegistry`, keyed
  by component (home waveguide, wireless channel) and channel class
  (C2C/E2E/SR, photonic vs wireless), flattened into JSONL run records.

Per-packet latency breakdown
----------------------------

Each measured packet's end-to-end latency is decomposed into:

``queueing``       source-NI wait (``t_inject - t_create``)
``token_wait``     cycles between medium VC-allocation and the head
                   flit's send, summed over shared-medium hops
``serialization``  head-to-tail spacing on the *last* traversed link --
                   the only hop whose serialization sits on the critical
                   path (earlier hops overlap downstream pipelining)
``flight``         propagation latency of each traversed link
``retx``           backoff + engine wait of link-layer retransmissions
``other``          the remainder (router pipeline + switch contention)

aggregated into per-channel-class histograms (``pkt_token_wait[C2C]``,
...). The class of a packet is the distance class of the wireless channel
it traversed, else ``photonic``/``electrical``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.telemetry.classify import infer_channel_classes, link_class
from repro.telemetry.events import (
    BUFFER_SAMPLE,
    CONTROL,
    DEADLOCK,
    DRAIN_END,
    DRAIN_START,
    FAILOVER,
    FLIT_DROP,
    FLIT_RECV,
    FLIT_SEND,
    PACKET_DONE,
    RECOVERY,
    RETX,
    TOKEN_GRANT,
    TOKEN_REQUEST,
    TRAFFIC_RESUMED,
    VC_STALL,
    TraceEvent,
)
from repro.telemetry.metrics import MetricRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.links import Endpoint, Link, SharedMedium
    from repro.noc.packet import Flit, Packet
    from repro.noc.router import Router
    from repro.noc.simulator import Simulator

#: Latency-breakdown stages, in reporting order.
BREAKDOWN_STAGES = (
    "queueing",
    "token_wait",
    "serialization",
    "flight",
    "retx",
    "other",
)


class _PacketTrace:
    """Mutable per-packet breakdown accumulator (alive until ejection)."""

    __slots__ = (
        "token_since",
        "token_wait",
        "serialization",
        "flight",
        "retx_wait",
        "head_cycle",
        "cls",
    )

    def __init__(self) -> None:
        self.token_since = -1  # cycle the packet started waiting for a token
        self.token_wait = 0
        self.serialization = 0
        self.flight = 0
        self.retx_wait = 0
        self.head_cycle = -1
        self.cls: Optional[str] = None  # wireless distance class, if any


class Tracer:
    """Collects events and metrics from one simulation.

    Parameters
    ----------
    enabled:
        ``False`` makes the tracer inert: the simulator treats it exactly
        like ``tracer=None`` (no hook is ever invoked; ``emits`` stays 0).
    record_events:
        Buffer :class:`TraceEvent` objects (needed for Chrome export).
        ``False`` keeps metrics only -- the cheap mode run records use.
    collect_metrics:
        Maintain the :class:`MetricRegistry` and per-packet breakdowns.
    max_events:
        Hard cap on buffered events; beyond it events are counted in
        ``events_dropped`` instead of stored (runaway-trace protection).
    channel_classes:
        Optional ``channel_id -> distance class`` map. When empty it is
        inferred from the network at :meth:`bind` time (OWN topologies).
    sample_every:
        If > 0, the simulator calls :meth:`on_cycle_sample` every
        ``sample_every`` cycles, snapshotting per-router buffer occupancy
        into a ``buffer_sample`` event (the congestion-heatmap input).
        ``0`` (default) disables sampling entirely.
    sinks:
        Streaming event consumers (see :meth:`add_sink`). Sinks receive
        *every* event -- even with ``record_events=False`` and past the
        ``max_events`` buffer cap -- so memory-bounded consumers like
        :class:`repro.telemetry.windows.WindowedAggregator` can digest
        arbitrarily long runs without buffering the event list.
    """

    def __init__(
        self,
        enabled: bool = True,
        record_events: bool = True,
        collect_metrics: bool = True,
        max_events: int = 1_000_000,
        channel_classes: Optional[Dict[int, str]] = None,
        sample_every: int = 0,
        sinks: Optional[List[object]] = None,
    ) -> None:
        self.enabled = enabled
        self.record_events = record_events
        self.collect_metrics = collect_metrics
        self.max_events = max_events
        self.sample_every = sample_every
        self.events: List[TraceEvent] = []
        self.events_dropped = 0
        #: Total hook invocations -- the counter the "disabled tracing has
        #: zero overhead" regression test asserts on.
        self.emits = 0
        self.metrics = MetricRegistry()
        self.sim: Optional["Simulator"] = None
        self._channel_classes = dict(channel_classes or {})
        self._link_class: Dict["Link", str] = {}
        self._pkt: Dict[int, _PacketTrace] = {}
        self._req_since: Dict["Link", int] = {}
        self._retx_queued: Dict[tuple, int] = {}
        self._finalized = False
        self._sinks: List[object] = []
        #: Do the event-emitting branches run at all? True when events are
        #: buffered or at least one streaming sink wants them.
        self._eventing = record_events
        for sink in sinks or ():
            self.add_sink(sink)

    def add_sink(self, sink: object) -> None:
        """Attach a streaming consumer (``sink.on_event(TraceEvent)``).

        Sinks see the event stream as it is produced, independent of the
        ``record_events`` buffer and its ``max_events`` cap. A sink may
        also define ``on_finalize(tracer, sim)``, called once from
        :meth:`finalize`.
        """
        self._sinks.append(sink)
        self._eventing = True

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def bind(self, sim: "Simulator") -> None:
        """Attach to a simulator (called by ``Simulator.__init__``).

        Precomputes the link -> class map and hands each router a tracer
        reference so the VCA/SA stages can emit without a simulator hop.
        """
        self.sim = sim
        network = sim.network
        if not self._channel_classes:
            self._channel_classes = infer_channel_classes(network)
        for link in network.links:
            self._link_class[link] = link_class(link, self._channel_classes)
        for router in network.routers:
            router.tracer = self

    def class_of(self, link: "Link") -> str:
        cls = self._link_class.get(link)
        if cls is None:
            cls = self._link_class[link] = link_class(link, self._channel_classes)
        return cls

    def _event(
        self,
        cycle: int,
        etype: str,
        component: str,
        dur: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        ev = TraceEvent(cycle, etype, component, dur, args)
        if self.record_events:
            if len(self.events) < self.max_events:
                self.events.append(ev)
            else:
                self.events_dropped += 1
        for sink in self._sinks:
            sink.on_event(ev)

    # ------------------------------------------------------------------ #
    # Packet lifecycle (Simulator)
    # ------------------------------------------------------------------ #

    def on_packet_created(self, packet: "Packet", now: int) -> None:
        self.emits += 1
        if self.collect_metrics:
            self._pkt[packet.pid] = _PacketTrace()

    def on_flit_sent(self, link: "Link", flit: "Flit", now: int) -> None:
        self.emits += 1
        if self.collect_metrics:
            pt = self._pkt.get(flit.packet.pid)
            if pt is not None:
                if flit.is_head:
                    if pt.token_since >= 0 and link.medium is not None:
                        pt.token_wait += now - pt.token_since
                    pt.token_since = -1
                    pt.head_cycle = now
                    pt.flight += link.latency
                    if link.kind == "wireless":
                        pt.cls = self.class_of(link)
                if flit.is_tail and pt.head_cycle >= 0:
                    # Only the last hop's head-to-tail spacing sits on the
                    # critical path (earlier hops' serialization overlaps
                    # downstream pipelining), so overwrite rather than sum.
                    pt.serialization = now - pt.head_cycle
        if self._eventing:
            self._event(
                now,
                FLIT_SEND,
                link.name,
                dur=link.cycles_per_flit,
                args={"pid": flit.packet.pid, "seq": flit.seq},
            )

    def on_flit_delivered(self, endpoint: "Endpoint", flit: "Flit", now: int) -> None:
        self.emits += 1
        if self._eventing:
            self._event(
                now, FLIT_RECV, endpoint.name, args={"pid": flit.packet.pid}
            )

    def on_packet_ejected(self, packet: "Packet", now: int) -> None:
        self.emits += 1
        if not self.collect_metrics:
            return
        pt = self._pkt.pop(packet.pid, None)
        if pt is None:
            return
        total = now - packet.t_create
        queueing = (
            packet.t_inject - packet.t_create if packet.t_inject is not None else 0
        )
        parts = {
            "queueing": queueing,
            "token_wait": pt.token_wait,
            "serialization": pt.serialization,
            "flight": pt.flight,
            "retx": pt.retx_wait,
        }
        parts["other"] = max(0, total - sum(parts.values()))
        cls = pt.cls or ("photonic" if packet.photonic_hops else "electrical")
        # Warmup-epoch packets (injected before warmup_cycles, tagged by
        # the stats collector) stay out of the latency histograms, matching
        # the measured-window filtering in repro.noc.stats; their PACKET_DONE
        # event is still emitted for trace completeness.
        if packet.measured is not False:
            hist = self.metrics.histogram
            hist("pkt_total", cls).observe(total)
            for stage, v in parts.items():
                hist(f"pkt_{stage}", cls).observe(v)
        if self._eventing:
            args = dict(parts)
            args.update({"pid": packet.pid, "total": total, "class": cls})
            self._event(now, PACKET_DONE, f"core{packet.dst_core}", args=args)

    # ------------------------------------------------------------------ #
    # Token arbitration (Router VCA + Simulator phase 2)
    # ------------------------------------------------------------------ #

    def on_medium_request(
        self, medium: "SharedMedium", link: "Link", packet: "Packet", now: int
    ) -> None:
        self.emits += 1
        if self.collect_metrics:
            pt = self._pkt.get(packet.pid)
            if pt is not None:
                pt.token_since = now
            if link not in self._req_since:
                self._req_since[link] = now
        if self._eventing:
            self._event(
                now, TOKEN_REQUEST, medium.name,
                args={"link": link.name, "pid": packet.pid},
            )

    def on_token_grant(self, medium: "SharedMedium", link: "Link", now: int) -> None:
        self.emits += 1
        wait = now - self._req_since.pop(link, now) + medium.arb_latency
        if self.collect_metrics:
            self.metrics.counter("token_wait_cycles", medium.name).add(wait)
            self.metrics.counter("token_grants", medium.name).add(1)
            self.metrics.histogram("token_wait", medium.kind).observe(wait)
        if self._eventing:
            self._event(
                now, TOKEN_GRANT, medium.name,
                args={"link": link.name, "wait": wait},
            )

    # ------------------------------------------------------------------ #
    # Stalls (Router SA)
    # ------------------------------------------------------------------ #

    def on_vc_stall(
        self, router: "Router", port_kind: str, reason: str, now: int
    ) -> None:
        self.emits += 1
        if self.collect_metrics:
            self.metrics.counter("vc_stall_cycles", f"{port_kind}.{reason}").add(1)
        if self._eventing:
            self._event(
                now, VC_STALL, f"r{router.rid}", args={"reason": reason}
            )

    # ------------------------------------------------------------------ #
    # Link-layer protocol (repro.faults.linklayer)
    # ------------------------------------------------------------------ #

    def on_flit_dropped(self, endpoint: "Endpoint", flit: "Flit", now: int) -> None:
        self.emits += 1
        if self.collect_metrics:
            router = endpoint.router
            kind = (
                router.input_ports[endpoint.in_port].kind
                if router is not None
                else "sink"
            )
            self.metrics.counter("flit_drops", kind).add(1)
        if self._eventing:
            self._event(
                now, FLIT_DROP, endpoint.name,
                args={"pid": flit.packet.pid, "fate": flit.fate},
            )

    def on_retx_queued(self, link: "Link", packet: "Packet", now: int) -> None:
        self.emits += 1
        if self.collect_metrics:
            self._retx_queued[(id(link), packet.pid)] = now

    def on_retx_start(
        self, link: "Link", packet: "Packet", attempts: int, now: int
    ) -> None:
        self.emits += 1
        if self.collect_metrics:
            queued = self._retx_queued.pop((id(link), packet.pid), now)
            pt = self._pkt.get(packet.pid)
            if pt is not None:
                pt.retx_wait += now - queued
            self.metrics.counter("retx_packets", self.class_of(link)).add(1)
        if self._eventing:
            self._event(
                now, RETX, link.name,
                args={"pid": packet.pid, "attempts": attempts},
            )

    def on_failover(self, link: "Link", now: int) -> None:
        self.emits += 1
        if self.collect_metrics:
            self.metrics.counter("failovers", self.class_of(link)).add(1)
        if self._eventing:
            self._event(now, FAILOVER, link.name)

    def on_recovery(self, link: "Link", now: int) -> None:
        self.emits += 1
        if self.collect_metrics:
            self.metrics.counter("recoveries", self.class_of(link)).add(1)
        if self._eventing:
            self._event(now, RECOVERY, link.name)

    # ------------------------------------------------------------------ #
    # Control plane (repro.control)
    # ------------------------------------------------------------------ #

    def on_control(self, action: str, detail: dict, now: int) -> None:
        """One control-plane actuation (spare move, probe, unfail, ...).

        ``detail`` is the decision-log record (already JSON-safe); it rides
        along in the event args so Chrome traces and HTML reports show what
        the controller did at each epoch.
        """
        self.emits += 1
        if self.collect_metrics:
            self.metrics.counter("control_actions", action).add(1)
        if self._eventing:
            self._event(now, CONTROL, "control", args=dict(detail))

    # ------------------------------------------------------------------ #
    # Run-phase markers (Simulator drain / resume / watchdog)
    # ------------------------------------------------------------------ #

    def on_drain_start(self, now: int, occupancy: int, backlog: int) -> None:
        self.emits += 1
        if self._eventing:
            self._event(
                now, DRAIN_START, "sim",
                args={"occupancy": occupancy, "backlog": backlog},
            )

    def on_drain_end(
        self, now: int, moved: int, ejected: int, drained: bool
    ) -> None:
        self.emits += 1
        if self._eventing:
            self._event(
                now, DRAIN_END, "sim",
                args={"moved": moved, "ejected": ejected, "drained": drained},
            )

    def on_traffic_resumed(self, now: int, restored: bool) -> None:
        self.emits += 1
        if self._eventing:
            self._event(now, TRAFFIC_RESUMED, "sim", args={"restored": restored})

    def on_deadlock(self, now: int, occupancy: int) -> None:
        self.emits += 1
        if self._eventing:
            self._event(now, DEADLOCK, "sim", args={"occupancy": occupancy})

    # ------------------------------------------------------------------ #
    # Periodic state sampling (Simulator, every ``sample_every`` cycles)
    # ------------------------------------------------------------------ #

    def on_cycle_sample(self, now: int) -> None:
        """Snapshot per-router buffer occupancy into a ``buffer_sample``.

        Pure observation: reads router occupancy counters, never touches
        simulation state, so sampled runs stay bit-identical to unsampled
        ones. Only routers with buffered flits appear in the snapshot.
        """
        self.emits += 1
        sim = self.sim
        if sim is None:
            return
        occ: Dict[str, int] = {}
        totals = None
        kernels = getattr(sim, "kernels", None)
        if kernels is not None and kernels.supported:
            # One reduceat over the flat occupancy array instead of a
            # python loop over every VC of every router. The mirrors are
            # write-through, so this is valid on traced and dense runs
            # too, not just when the kernel SA sweep is driving.
            totals = kernels.router_occupancy()
        if totals is not None:
            for rid, n in enumerate(totals.tolist()):
                if n:
                    occ[f"r{rid}"] = n
        else:
            for router in sim.network.routers:
                n = router.occupancy()
                if n:
                    occ[f"r{router.rid}"] = n
        if self._eventing:
            self._event(now, BUFFER_SAMPLE, "sim", args={"occupancy": occ})
        if self.collect_metrics:
            self.metrics.counter("buffer_samples").add(1)
            self.metrics.histogram("buffer_occupancy").observe(
                sum(occ.values())
            )

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #

    def finalize(self, sim: Optional["Simulator"] = None) -> None:
        """Fold post-run link/medium activity into the registry.

        Wireless channel occupancy (per class and per channel) and
        photonic-medium utilisation are cheaper to compute once from the
        links' own activity counters than to sample per cycle. Idempotent.
        """
        sim = sim or self.sim
        if self._finalized or sim is None:
            return
        self._finalized = True
        for sink in self._sinks:
            on_finalize = getattr(sink, "on_finalize", None)
            if on_finalize is not None:
                on_finalize(self, sim)
        if not self.collect_metrics:
            return
        elapsed = max(1, sim.now)
        counter = self.metrics.counter
        gauge = self.metrics.gauge
        busy_by_class: Dict[str, int] = {}
        links_by_class: Dict[str, int] = {}
        for link in sim.network.links:
            if link.kind != "wireless":
                continue
            cls = self.class_of(link)
            links_by_class[cls] = links_by_class.get(cls, 0) + 1
            if link.flits_carried == 0:
                continue
            busy = link.flits_carried * link.cycles_per_flit
            busy_by_class[cls] = busy_by_class.get(cls, 0) + busy
            counter("wireless_flits", cls).add(link.flits_carried)
            counter("channel_busy_cycles", link.name).add(busy)
        for cls, busy in busy_by_class.items():
            counter("wireless_busy_cycles", cls).add(busy)
            # Average busy fraction across the class's channels (0..1).
            gauge("wireless_occupancy", cls).set(
                busy / (elapsed * links_by_class[cls])
            )
        photonic_busy = 0
        for medium in sim.network.mediums:
            if medium.flits_carried == 0:
                continue
            cpf = medium.members[0].cycles_per_flit if medium.members else 1
            busy = medium.flits_carried * cpf
            gauge("medium_occupancy", medium.name).set(busy / elapsed)
            if medium.kind == "photonic":
                photonic_busy += busy
        if photonic_busy:
            counter("photonic_busy_cycles", "photonic").add(photonic_busy)

    def metrics_dict(self) -> Dict[str, Optional[float]]:
        """Flat, JSON-safe metrics (call after :meth:`finalize`)."""
        return self.metrics.as_flat_dict()
