"""Time-windowed aggregation of the trace-event stream.

The :class:`WindowedAggregator` is a streaming :class:`Tracer` sink: it
folds every event into fixed-width cycle windows as it is produced, so
memory scales with ``components x windows`` instead of with the event
count. This is the input layer for congestion heatmaps
(:mod:`repro.analysis.congestion`) -- the tracer can run in metrics-only
mode (``record_events=False``) and the aggregator still sees the stream.

Aggregated channels, keyed ``(kind, component)``:

``link_busy``    serialization cycles spent on each link per window
                 (from ``flit_send``; divide by the window width for an
                 occupancy fraction in [0, 1])
``token_wait``   request->grant wait cycles charged to each shared
                 medium per window (from ``token_grant``)
``vc_stall``     stalled-VC observations per router per window
``buffer_occ``   mean buffered flits per router per window (from the
                 simulator's periodic ``buffer_sample`` snapshots;
                 requires ``Tracer(sample_every=N)``)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.telemetry.events import (
    BUFFER_SAMPLE,
    FLIT_SEND,
    TOKEN_GRANT,
    VC_STALL,
    TraceEvent,
)

#: Aggregation kinds a :class:`WindowedAggregator` produces.
WINDOW_KINDS = ("link_busy", "token_wait", "vc_stall", "buffer_occ")


class WindowedAggregator:
    """Streaming per-window accumulator over a tracer's event stream.

    Parameters
    ----------
    window_cycles:
        Width of one aggregation window in cycles (must be >= 1).

    Each cell keeps ``(sum, n_samples)`` so both totals (busy cycles)
    and means (sampled occupancy) fall out of the same structure.
    """

    def __init__(self, window_cycles: int = 64) -> None:
        if window_cycles < 1:
            raise ValueError(f"window_cycles must be >= 1, got {window_cycles}")
        self.window_cycles = window_cycles
        self.events_seen = 0
        self.last_cycle = 0
        # (kind, component) -> {window_index: [sum, n]}
        self._cells: Dict[Tuple[str, str], Dict[int, List[float]]] = {}

    # ------------------------------------------------------------------ #
    # Sink protocol
    # ------------------------------------------------------------------ #

    def _add(self, kind: str, component: str, window: int, value: float) -> None:
        series = self._cells.get((kind, component))
        if series is None:
            series = self._cells[(kind, component)] = {}
        cell = series.get(window)
        if cell is None:
            series[window] = [value, 1]
        else:
            cell[0] += value
            cell[1] += 1

    def on_event(self, ev: TraceEvent) -> None:
        self.events_seen += 1
        if ev.cycle > self.last_cycle:
            self.last_cycle = ev.cycle
        window = ev.cycle // self.window_cycles
        etype = ev.etype
        if etype == FLIT_SEND:
            self._add("link_busy", ev.component, window, max(1, ev.dur))
        elif etype == TOKEN_GRANT:
            wait = (ev.args or {}).get("wait", 0)
            self._add("token_wait", ev.component, window, wait)
        elif etype == VC_STALL:
            self._add("vc_stall", ev.component, window, 1)
        elif etype == BUFFER_SAMPLE:
            for component, occ in ((ev.args or {}).get("occupancy") or {}).items():
                self._add("buffer_occ", component, window, occ)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def kinds(self) -> List[str]:
        """Aggregation kinds that saw at least one event."""
        present = {kind for kind, _ in self._cells}
        return [k for k in WINDOW_KINDS if k in present]

    def components(self, kind: str) -> List[str]:
        """Components with data under ``kind``, in name order."""
        return sorted(c for k, c in self._cells if k == kind)

    def n_windows(self) -> int:
        """Window count covering every cycle seen so far."""
        return self.last_cycle // self.window_cycles + 1

    def series(self, kind: str, component: str, mean: bool = False) -> List[float]:
        """One component's dense per-window values (0.0 for empty windows).

        ``mean=True`` divides each window's sum by its sample count --
        the right reading for sampled gauges like ``buffer_occ``.
        """
        cells = self._cells.get((kind, component), {})
        out = [0.0] * self.n_windows()
        for window, (total, n) in cells.items():
            out[window] = total / n if mean else total
        return out

    def matrix(self, kind: str, mean: bool = False) -> Tuple[List[str], List[List[float]]]:
        """All components' series under ``kind`` as ``(names, rows)``."""
        names = self.components(kind)
        return names, [self.series(kind, name, mean=mean) for name in names]

    def snapshot(self) -> Dict[str, object]:
        """Compact running aggregate (the heartbeat payload).

        Cheap to compute and small enough to cross the observation queue
        on every heartbeat: per kind it carries the component count, the
        grand total, the sample count and the single busiest component
        (ties broken by name for determinism). Because the aggregator is
        streaming, a snapshot taken mid-run over ``N`` events is exactly
        the snapshot a fresh aggregator produces from those same ``N``
        events post-hoc.
        """
        kinds: Dict[str, Dict[str, object]] = {}
        for (kind, component), series in sorted(self._cells.items()):
            total = 0.0
            samples = 0
            for cell_total, cell_n in series.values():
                total += cell_total
                samples += cell_n
            agg = kinds.get(kind)
            if agg is None:
                agg = kinds[kind] = {
                    "components": 0,
                    "total": 0.0,
                    "samples": 0,
                    "peak_component": component,
                    "peak_total": total,
                }
            agg["components"] += 1
            agg["total"] += total
            agg["samples"] += samples
            if total > agg["peak_total"]:
                agg["peak_component"] = component
                agg["peak_total"] = total
        return {
            "window_cycles": self.window_cycles,
            "n_windows": self.n_windows() if self._cells else 0,
            "events": self.events_seen,
            "kinds": {k: kinds[k] for k in WINDOW_KINDS if k in kinds},
        }
