"""Channel-class attribution for telemetry.

The paper's wireless channel plan (Tables I/II) groups channels into
distance classes -- C2C (corner-to-corner), E2E (edge-to-edge) and SR
(short-range) -- and the power/occupancy story of Figs. 5-8 is told per
class. Telemetry attributes per-link activity to those classes so run
records can report, e.g., ``wireless_busy_cycles[C2C]``.

Class labels:

* wireless links with a known Table III ``channel_id`` -> ``"C2C"`` /
  ``"E2E"`` / ``"SR"``;
* other wireless links (spares, baseline topologies) -> ``"wireless"``;
* photonic / electrical links -> their kind.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.links import Link
    from repro.noc.network import Network

#: Distance classes of the paper's wireless channel plans.
WIRELESS_CLASSES = ("C2C", "E2E", "SR")


def own_channel_classes(n_cores: int) -> Dict[int, str]:
    """Table III channel index -> distance class for an OWN network.

    OWN-256 (Table I) assigns indices 1-12; OWN-1024 (Table II) uses all
    16 with a different class layout, selected by core count.
    """
    if n_cores >= 1024:
        from repro.core.channels import own1024_channels

        channels = own1024_channels()
    else:
        from repro.core.channels import own256_channels

        channels = own256_channels()
    return {ch.channel_index: ch.distance_class for ch in channels}


def infer_channel_classes(network: "Network") -> Dict[int, str]:
    """Best-effort channel-class map for a finalized network.

    OWN networks are recognised by name; other topologies either have no
    ``channel_id`` on their wireless links (classified ``"wireless"``) or
    can pass an explicit map to :class:`~repro.telemetry.tracer.Tracer`.
    """
    if network.name.startswith("own"):
        return own_channel_classes(network.n_cores)
    return {}


def link_class(link: "Link", channel_classes: Optional[Dict[int, str]] = None) -> str:
    """Telemetry class label for one link."""
    if link.kind == "wireless":
        if channel_classes and link.channel_id is not None:
            return channel_classes.get(link.channel_id, "wireless")
        return "wireless"
    return link.kind
