"""Exporters: Chrome ``trace_event`` JSON.

The Chrome trace format (loadable in ``about:tracing`` and Perfetto)
models a trace as processes containing named threads with duration and
instant events. We map:

* the whole network -> process 0,
* each component (link, medium, router, ``sim``) -> one thread (track),
* ``flit_send`` -> a duration ("X") event spanning the serialization
  interval, so link/channel busy-vs-idle is directly visible,
* every other event type -> a thread-scoped instant ("i") event.

Cycles are exported as microseconds 1:1 (``ts`` must be numeric; the
absolute unit is meaningless for a cycle simulator, relative spans are
what matters).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union, TYPE_CHECKING

from repro.telemetry.events import SPAN_EVENTS

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.tracer import Tracer


def chrome_trace(tracer: "Tracer") -> Dict[str, object]:
    """Build the Chrome ``trace_event`` JSON object for a tracer's events."""
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "network"},
        }
    ]
    tids: Dict[str, int] = {}

    def tid_for(component: str) -> int:
        tid = tids.get(component)
        if tid is None:
            tid = tids[component] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": component},
                }
            )
        return tid

    for ev in tracer.events:
        entry: Dict[str, object] = {
            "name": ev.etype,
            "cat": ev.etype,
            "pid": 0,
            "tid": tid_for(ev.component),
            "ts": ev.cycle,
            "args": ev.args or {},
        }
        if ev.etype in SPAN_EVENTS:
            entry["ph"] = "X"
            entry["dur"] = max(1, ev.dur)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {
            "unit": "1 cycle = 1 us",
            "events_dropped": tracer.events_dropped,
        },
    }


def write_chrome_trace(tracer: "Tracer", path: Union[str, Path]) -> Path:
    """Serialise the tracer's events to a Chrome trace JSON file."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, allow_nan=False)
    return path
