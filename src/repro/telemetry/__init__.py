"""Structured, low-overhead telemetry for the cycle simulator.

``repro.telemetry`` is the observability layer the paper's per-component
claims (token wait at the MWSR crossbars, wireless channel occupancy per
distance class, retransmission cost) are measured -- and regression
tested -- against:

- :class:`Tracer` -- typed cycle-stamped events plus per-component
  metrics, threaded through ``Simulator``/``Router``/link arbitration/
  ``repro.faults`` behind a single ``is not None`` check per hot-path
  site (zero work when no tracer is attached);
- :class:`MetricRegistry` / :class:`Counter` / :class:`Histogram` --
  mergeable aggregates keyed by component and channel class;
- :func:`chrome_trace` / :func:`write_chrome_trace` -- Chrome
  ``trace_event`` JSON for ``about:tracing`` / Perfetto;
- flat metric dicts folded into JSONL run records via
  ``RunSpec(telemetry=True)`` and the ``--metrics`` / ``--trace`` CLI
  flags.

See ``docs/telemetry.md`` for the event schema and a Chrome-trace howto.
"""

from repro.telemetry.classify import (
    WIRELESS_CLASSES,
    infer_channel_classes,
    link_class,
    own_channel_classes,
)
from repro.telemetry.events import (
    BUFFER_SAMPLE,
    DEADLOCK,
    DRAIN_END,
    DRAIN_START,
    EVENT_TYPES,
    FAILOVER,
    FLIT_DROP,
    FLIT_RECV,
    FLIT_SEND,
    PACKET_DONE,
    RETX,
    SPAN_EVENTS,
    TOKEN_GRANT,
    TOKEN_REQUEST,
    TRAFFIC_RESUMED,
    VC_STALL,
    TraceEvent,
)
from repro.telemetry.export import chrome_trace, write_chrome_trace
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.telemetry.tracer import BREAKDOWN_STAGES, Tracer
from repro.telemetry.windows import WINDOW_KINDS, WindowedAggregator

__all__ = [
    "BREAKDOWN_STAGES",
    "BUFFER_SAMPLE",
    "Counter",
    "DEADLOCK",
    "DRAIN_END",
    "DRAIN_START",
    "EVENT_TYPES",
    "FAILOVER",
    "FLIT_DROP",
    "FLIT_RECV",
    "FLIT_SEND",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "PACKET_DONE",
    "RETX",
    "SPAN_EVENTS",
    "TOKEN_GRANT",
    "TOKEN_REQUEST",
    "TRAFFIC_RESUMED",
    "TraceEvent",
    "Tracer",
    "VC_STALL",
    "WINDOW_KINDS",
    "WIRELESS_CLASSES",
    "WindowedAggregator",
    "chrome_trace",
    "infer_channel_classes",
    "link_class",
    "own_channel_classes",
    "write_chrome_trace",
]
