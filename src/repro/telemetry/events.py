"""Typed trace events.

One event is one ``TraceEvent`` -- a NamedTuple so hot-path construction
is a single allocation and tests read fields by name. Events are appended
in simulation order, so a tracer's event list is monotonically
non-decreasing in ``cycle`` (the regression suite locks this down).

Event vocabulary
----------------

=================  ====================================================
``flit_send``      A flit began link traversal (``dur`` = serialization
                   cycles; renders as a busy span on the link's track).
``flit_recv``      A flit entered a downstream buffer or ejected at a
                   sink (component is the endpoint name).
``flit_drop``      Receiver-side discard of a corrupt/lost flit.
``vc_stall``       An ACTIVE VC with a buffered flit could not move this
                   cycle (``args["reason"]``: credit / token / link).
``token_request``  A link began waiting for its shared medium's token.
``token_grant``    The medium's token was handed to a writer
                   (``args["wait"]`` = request-to-grant cycles).
``retx``           The link-layer engine began retransmitting a packet.
``failover``       The health monitor retired a channel.
``recovery``       A retired channel returned to service (probes passed).
``control``        The control plane acted (``args["action"]``: the
                   decision-log record -- spare moves, probes, unfails,
                   relay reweights, freeze/fallback).
``packet_done``    A packet ejected; ``args`` carries the latency
                   breakdown (queueing / token_wait / serialization /
                   flight / retx / other).
``drain_start``    ``Simulator.drain`` paused traffic.
``drain_end``      The drain finished (``args``: moved, ejected,
                   drained).
``traffic_resumed``  ``Simulator.resume_traffic`` restored injection.
``deadlock``       The watchdog aborted the run.
``buffer_sample``  Periodic network-state snapshot (``args["occupancy"]``
                   maps router name -> buffered flits; emitted every
                   ``Tracer(sample_every=N)`` cycles).
=================  ====================================================
"""

from __future__ import annotations

from typing import NamedTuple, Optional

FLIT_SEND = "flit_send"
FLIT_RECV = "flit_recv"
FLIT_DROP = "flit_drop"
VC_STALL = "vc_stall"
TOKEN_REQUEST = "token_request"
TOKEN_GRANT = "token_grant"
RETX = "retx"
FAILOVER = "failover"
RECOVERY = "recovery"
CONTROL = "control"
PACKET_DONE = "packet_done"
DRAIN_START = "drain_start"
DRAIN_END = "drain_end"
TRAFFIC_RESUMED = "traffic_resumed"
DEADLOCK = "deadlock"
BUFFER_SAMPLE = "buffer_sample"

#: Every event type the tracer may emit (export validates against this).
EVENT_TYPES = (
    FLIT_SEND,
    FLIT_RECV,
    FLIT_DROP,
    VC_STALL,
    TOKEN_REQUEST,
    TOKEN_GRANT,
    RETX,
    FAILOVER,
    RECOVERY,
    CONTROL,
    PACKET_DONE,
    DRAIN_START,
    DRAIN_END,
    TRAFFIC_RESUMED,
    DEADLOCK,
    BUFFER_SAMPLE,
)

#: Event types rendered as duration spans ("X" phase) in Chrome traces;
#: everything else becomes an instant event.
SPAN_EVENTS = (FLIT_SEND,)


class TraceEvent(NamedTuple):
    """One cycle-stamped occurrence on a named component."""

    cycle: int
    etype: str
    component: str
    dur: int = 0
    args: Optional[dict] = None
