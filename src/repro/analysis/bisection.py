"""Bisection-bandwidth accounting and the equalisation the paper applies.

"In order for a fair comparison between different topologies, we have kept
the bisection bandwidth same for all the architectures by adding
appropriate delay into the network." (Sec. V-A)

The reference cut splits the chip down the middle (clusters {0,3} vs {1,2}
in OWN's floorplan). Directed channels crossing it:

========  ==========================================  =====================
topology  crossing channels                           equalisation applied
========  ==========================================  =====================
OWN-256   8 wireless channels (0<->1, 3<->2, 0<->2,    reference (1 c/f)
          3<->1, both directions)
CMESH     16 mesh links (8 per direction), each a      3 cycles/flit
          full-width 320 Gbps wire vs 32 Gbps radio
wCMESH    8 wireless grid links -- but its 48 links     2 cycles/flit on
          share the same 16-channel spectrum            wireless links
OptXB     32 home waveguides read on the far side,     4 cycles/flit +
          each 64-wavelength (~640 Gbps)                10-cycle token
p-Clos    16 up-waveguides through the middle stage    16 middles, 2-cycle
                                                        token
========  ==========================================  =====================

Exact physical equalisation (CMESH links carry 10x a 32 GHz radio; 20x at
the cut) would make the electrical baselines far slower than the paper
reports, so -- like the paper -- the delays above equalise the *saturation
operating point* while keeping the cut-bandwidth ratios honest to within
the serialization granularity. :func:`bisection_report` prints both the raw
and the equalised numbers so the choice is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.topologies.base import BuiltTopology


@dataclass(frozen=True)
class BisectionEntry:
    """Bisection accounting for one topology instance."""

    name: str
    crossing_channels: int
    cycles_per_flit: int
    #: Directed cut capacity in flits per cycle after equalisation.
    equalized_flits_per_cycle: float
    #: Raw physical cut bandwidth [Gbps] before equalisation.
    raw_gbps: float


#: Physical per-channel bandwidths [Gbps] used for the raw columns.
WIRELESS_CHANNEL_GBPS = 32.0
ELECTRICAL_LINK_GBPS = 320.0  # 128 bits x 2.5 GHz
WAVEGUIDE_GBPS = 640.0  # 64 wavelengths x 10 Gbps


def _half_cut_links(built: BuiltTopology) -> Dict[str, int]:
    """Count directed channels straddling the vertical mid-die cut.

    Shared media (waveguides, SWMR wireless channels) count once per
    *medium*: a home waveguide is one physical channel however many writers
    it has. Point-to-point links count individually.
    """
    net = built.network
    counts: Dict[str, int] = {}
    xs = [r.position_mm[0] for r in net.routers]
    die_mid = (max(xs) + min(xs)) / 2.0
    seen_media = set()
    for link in net.links:
        if link.src_router is None or link.name.startswith("eject"):
            continue
        if link.medium is not None:
            if id(link.medium) in seen_media:
                continue
            seen_media.add(id(link.medium))
            # A bus crosses the cut if some writer and some reader straddle.
            writer_sides = {
                (m.src_router.position_mm[0] > die_mid) for m in link.medium.members
            }
            reader_sides = set()
            for member in link.medium.members:
                for ep in member.all_endpoints():
                    if ep.router is not None:
                        reader_sides.add(ep.router.position_mm[0] > die_mid)
            if len(writer_sides | reader_sides) > 1:
                counts[link.kind] = counts.get(link.kind, 0) + 1
            continue
        sx = link.src_router.position_mm[0]
        for ep in link.all_endpoints():
            if ep.router is None:
                continue
            dx = ep.router.position_mm[0]
            if (sx - die_mid) * (dx - die_mid) < 0:
                counts[link.kind] = counts.get(link.kind, 0) + 1
                break
    return counts


def measure_bisection(built: BuiltTopology) -> BisectionEntry:
    """Bisection entry for a built topology (vertical mid-die cut)."""
    counts = _half_cut_links(built)
    net = built.network
    # Representative serialization: the slowest non-eject link class.
    cpfs = [l.cycles_per_flit for l in net.links if not l.name.startswith("eject")]
    cpf = max(cpfs) if cpfs else 1
    crossing = sum(counts.values())
    raw = (
        counts.get("wireless", 0) * WIRELESS_CHANNEL_GBPS
        + counts.get("electrical", 0) * ELECTRICAL_LINK_GBPS
        + counts.get("photonic", 0) * WAVEGUIDE_GBPS
    )
    return BisectionEntry(
        name=net.name,
        crossing_channels=crossing,
        cycles_per_flit=cpf,
        equalized_flits_per_cycle=sum(
            n / cpf for n in counts.values()
        ),
        raw_gbps=raw,
    )


def bisection_report(built_list: List[BuiltTopology]) -> List[BisectionEntry]:
    """Bisection entries for a set of topologies (one row per network)."""
    return [measure_bisection(b) for b in built_list]
