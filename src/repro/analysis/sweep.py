"""Load sweeps and saturation detection (the x-axes of Figs. 7-8).

The standard open-loop methodology: for each injection rate run warmup +
measurement, record mean latency and accepted throughput; the saturation
point is the largest offered load where latency stays below a multiple of
the zero-load latency *and* the network still accepts ~the offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.noc.packet import reset_packet_ids
from repro.noc.simulator import Simulator
from repro.topologies.base import BuiltTopology
from repro.traffic.generator import SyntheticTraffic


@dataclass
class SweepPoint:
    """One (offered load, measured behaviour) sample."""

    offered: float
    latency: float
    throughput: float
    packets: int

    @property
    def accepted_fraction(self) -> float:
        return self.throughput / self.offered if self.offered > 0 else float("nan")


@dataclass
class SweepResult:
    """A full load sweep for one (topology, pattern) pair."""

    name: str
    pattern: str
    points: List[SweepPoint] = field(default_factory=list)

    def zero_load_latency(self) -> float:
        return self.points[0].latency if self.points else float("nan")

    def saturation_offered(
        self, latency_factor: float = 3.0, accept_threshold: float = 0.88
    ) -> Optional[float]:
        """Largest offered load that is still pre-saturation."""
        if not self.points:
            return None
        zero = self.points[0].latency
        last = None
        for p in self.points:
            if p.latency < latency_factor * zero and p.accepted_fraction > accept_threshold:
                last = p.offered
            else:
                break
        return last

    def saturation_throughput(self) -> float:
        """Peak accepted throughput across the sweep (Fig. 7a's metric)."""
        return max((p.throughput for p in self.points), default=float("nan"))


def run_point(
    builder: Callable[[], BuiltTopology],
    pattern: str,
    rate: float,
    cycles: int = 1200,
    warmup: int = 400,
    packet_size: int = 4,
    seed: int = 3,
) -> SweepPoint:
    """Run one simulation point on a freshly built network."""
    reset_packet_ids()
    built = builder()
    n = built.n_cores
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(n, pattern, rate, packet_size, seed=seed),
        warmup_cycles=warmup,
    )
    sim.run(cycles)
    return SweepPoint(
        offered=rate,
        latency=sim.mean_latency(),
        throughput=sim.throughput(),
        packets=sim.stats.measured_packets,
    )


def load_sweep(
    builder: Callable[[], BuiltTopology],
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1200,
    warmup: int = 400,
    packet_size: int = 4,
    seed: int = 3,
    stop_at_saturation: bool = True,
    name: Optional[str] = None,
) -> SweepResult:
    """Sweep offered load; optionally stop once clearly saturated."""
    result = SweepResult(name=name or builder().name, pattern=pattern)
    zero: Optional[float] = None
    for rate in rates:
        point = run_point(builder, pattern, rate, cycles, warmup, packet_size, seed)
        result.points.append(point)
        if zero is None:
            zero = point.latency
        if stop_at_saturation and (
            point.latency >= 4.0 * zero or point.accepted_fraction < 0.8
        ):
            break
    return result


def compare_saturation(
    builders: Dict[str, Callable[[], BuiltTopology]],
    pattern: str,
    rates: Sequence[float],
    **kwargs,
) -> Dict[str, SweepResult]:
    """Sweep several topologies on the same pattern (Fig. 7b/c data)."""
    return {
        name: load_sweep(builder, pattern, rates, name=name, **kwargs)
        for name, builder in builders.items()
    }
