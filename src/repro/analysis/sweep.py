"""Load sweeps and saturation detection (the x-axes of Figs. 7-8).

The standard open-loop methodology: for each injection rate run warmup +
measurement, record mean latency and accepted throughput; the saturation
point is the largest offered load where latency stays below a multiple of
the zero-load latency *and* the network still accepts ~the offered load.

All simulation points are submitted to the :mod:`repro.runtime` execution
engine as :class:`~repro.runtime.spec.RunSpec` values, so sweeps pick up
parallel workers, result caching and run records from whatever
:class:`~repro.runtime.executor.Executor` the caller supplies. Topologies
are referenced by registry key (``"own256"`` or ``("cmesh", {"n_cores":
256})``); legacy builder *callables* are still accepted and run in-process
through the same engine when they cannot be expressed as a spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.runtime import (
    Executor,
    RunResult,
    RunSpec,
    get_executor,
    ref_for_callable,
    resolve_ref,
)
from repro.topologies.base import BuiltTopology

#: How a sweep names its topology: a registry reference or a builder callable.
BuilderLike = Union[str, Tuple[str, dict], Callable[[], BuiltTopology]]

#: Early-stop rule shared by the serial and parallel paths: a point is
#: post-saturation when latency blows past 4x zero-load or acceptance
#: drops below 80 % of offered.
_STOP_LATENCY_FACTOR = 4.0
_STOP_ACCEPT_FRACTION = 0.8


@dataclass
class SweepPoint:
    """One (offered load, measured behaviour) sample."""

    offered: float
    latency: float
    throughput: float
    packets: int

    @property
    def accepted_fraction(self) -> float:
        return self.throughput / self.offered if self.offered > 0 else float("nan")


@dataclass
class SweepResult:
    """A full load sweep for one (topology, pattern) pair."""

    name: str
    pattern: str
    points: List[SweepPoint] = field(default_factory=list)

    def zero_load_latency(self) -> float:
        return self.points[0].latency if self.points else float("nan")

    def saturation_offered(
        self, latency_factor: float = 3.0, accept_threshold: float = 0.88
    ) -> Optional[float]:
        """Largest offered load that is still pre-saturation."""
        if not self.points:
            return None
        zero = self.points[0].latency
        last = None
        for p in self.points:
            if p.latency < latency_factor * zero and p.accepted_fraction > accept_threshold:
                last = p.offered
            else:
                break
        return last

    def saturation_throughput(self) -> float:
        """Peak accepted throughput across the sweep (Fig. 7a's metric)."""
        return max((p.throughput for p in self.points), default=float("nan"))


def point_spec(
    builder: BuilderLike,
    pattern: str,
    rate: float,
    cycles: int = 1200,
    warmup: int = 400,
    packet_size: int = 4,
    seed: int = 3,
    dense: bool = False,
) -> Optional[RunSpec]:
    """The :class:`RunSpec` for one sweep point (``None`` for opaque callables)."""
    ref = builder if not callable(builder) else ref_for_callable(builder)
    if ref is None:
        return None
    key, kwargs = resolve_ref(ref)
    return RunSpec.create(
        key,
        pattern=pattern,
        rate=rate,
        cycles=cycles,
        warmup=warmup,
        packet_size=packet_size,
        seed=seed,
        topology_kwargs=kwargs,
        dense=dense,
    )


def _point_from_result(result: RunResult) -> SweepPoint:
    return SweepPoint(
        offered=result.spec.traffic.rate,
        latency=result.summary["latency_mean"],
        throughput=result.summary["throughput"],
        packets=int(result.summary["packets_measured"]),
    )


def _legacy_run_point(
    builder: Callable[[], BuiltTopology],
    pattern: str,
    rate: float,
    cycles: int,
    warmup: int,
    packet_size: int,
    seed: int,
) -> Tuple[SweepPoint, str]:
    """In-process fallback for builders not expressible as specs.

    Shares the engine's isolation (the simulator binds a per-run packet-id
    allocator) but cannot be cached or parallelised.
    """
    from repro.noc.simulator import Simulator
    from repro.traffic.generator import SyntheticTraffic

    built = builder()
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(built.n_cores, pattern, rate, packet_size, seed=seed),
        warmup_cycles=warmup,
    )
    sim.run(cycles)
    point = SweepPoint(
        offered=rate,
        latency=sim.mean_latency(),
        throughput=sim.throughput(),
        packets=sim.stats.measured_packets,
    )
    return point, built.name


def run_point(
    builder: BuilderLike,
    pattern: str,
    rate: float,
    cycles: int = 1200,
    warmup: int = 400,
    packet_size: int = 4,
    seed: int = 3,
    executor: Optional[Executor] = None,
) -> SweepPoint:
    """Run one simulation point on a freshly built network."""
    spec = point_spec(builder, pattern, rate, cycles, warmup, packet_size, seed)
    if spec is None:
        point, _ = _legacy_run_point(
            builder, pattern, rate, cycles, warmup, packet_size, seed
        )
        return point
    return _point_from_result(get_executor(executor).run_one(spec))


def _is_saturated(point: SweepPoint, zero_latency: float) -> bool:
    return (
        point.latency >= _STOP_LATENCY_FACTOR * zero_latency
        or point.accepted_fraction < _STOP_ACCEPT_FRACTION
    )


def _truncate_at_saturation(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Apply the early-stop rule post-hoc (keeps parallel == serial)."""
    kept: List[SweepPoint] = []
    zero: Optional[float] = None
    for point in points:
        kept.append(point)
        if zero is None:
            zero = point.latency
        if _is_saturated(point, zero):
            break
    return kept


def load_sweep(
    builder: BuilderLike,
    pattern: str,
    rates: Sequence[float],
    cycles: int = 1200,
    warmup: int = 400,
    packet_size: int = 4,
    seed: int = 3,
    stop_at_saturation: bool = True,
    name: Optional[str] = None,
    executor: Optional[Executor] = None,
    dense: bool = False,
) -> SweepResult:
    """Sweep offered load; optionally stop once clearly saturated.

    With a parallel or caching executor every rate is submitted up front
    and the stop rule is applied to the assembled points -- the kept
    points are identical to a serial early-stopped sweep, the extra
    post-saturation points are simply discarded (and live on in the cache).

    ``dense`` disables the simulator's idle fast-forward for every point
    (bit-identical results either way; CI uses it to prove exactly that).
    """
    specs = [
        point_spec(builder, pattern, rate, cycles, warmup, packet_size, seed,
                   dense=dense)
        for rate in rates
    ]

    if specs and specs[0] is None:
        # Opaque callable: serial in-process loop with lazy name resolution
        # from the first built network (no throwaway build).
        result = SweepResult(name=name or "", pattern=pattern)
        zero: Optional[float] = None
        for rate in rates:
            point, built_name = _legacy_run_point(
                builder, pattern, rate, cycles, warmup, packet_size, seed
            )
            if not result.name:
                result.name = name or built_name
            result.points.append(point)
            if zero is None:
                zero = point.latency
            if stop_at_saturation and _is_saturated(point, zero):
                break
        return result

    ex = get_executor(executor)
    if stop_at_saturation and ex.jobs == 1 and ex.cache is None:
        # Serial, uncached: keep lazy early stopping (simulate fewer points).
        result = SweepResult(name=name or "", pattern=pattern)
        zero = None
        for spec in specs:
            run = ex.run_one(spec)
            if not result.name:
                result.name = name or str(run.meta.get("network_name", spec.topology))
            point = _point_from_result(run)
            result.points.append(point)
            if zero is None:
                zero = point.latency
            if _is_saturated(point, zero):
                break
        return result

    runs = ex.run(specs)
    resolved = name or str(runs[0].meta.get("network_name", specs[0].topology))
    points = [_point_from_result(run) for run in runs]
    if stop_at_saturation:
        points = _truncate_at_saturation(points)
    return SweepResult(name=resolved, pattern=pattern, points=points)


def compare_saturation(
    builders: Dict[str, BuilderLike],
    pattern: str,
    rates: Sequence[float],
    executor: Optional[Executor] = None,
    **kwargs,
) -> Dict[str, SweepResult]:
    """Sweep several topologies on the same pattern (Fig. 7b/c data).

    With ``executor.jobs > 1`` every (topology, rate) point across all
    topologies is dispatched as one batch, so the pool stays full even
    while one topology is deep into saturation.
    """
    ex = get_executor(executor)
    if ex.jobs > 1:
        kwargs = dict(kwargs, stop_at_saturation=kwargs.get("stop_at_saturation", True))
        stop = kwargs.pop("stop_at_saturation")
        spec_kwargs = {
            k: kwargs[k]
            for k in ("cycles", "warmup", "packet_size", "seed")
            if k in kwargs
        }
        spec_grid: Dict[str, List[Optional[RunSpec]]] = {
            name: [point_spec(b, pattern, rate, **spec_kwargs) for rate in rates]
            for name, b in builders.items()
        }
        flat = [s for specs in spec_grid.values() for s in specs if s is not None]
        if flat:
            batch = {s.digest(): r for s, r in zip(flat, ex.run(flat))}
        else:
            batch = {}
        out: Dict[str, SweepResult] = {}
        for name, specs in spec_grid.items():
            if specs and specs[0] is None:  # opaque callable: serial fallback
                out[name] = load_sweep(
                    builders[name], pattern, rates, name=name,
                    stop_at_saturation=stop, executor=ex, **spec_kwargs,
                )
                continue
            points = [_point_from_result(batch[s.digest()]) for s in specs]
            if stop:
                points = _truncate_at_saturation(points)
            out[name] = SweepResult(name=name, pattern=pattern, points=points)
        return out
    return {
        name: load_sweep(builder, pattern, rates, name=name, executor=ex, **kwargs)
        for name, builder in builders.items()
    }
