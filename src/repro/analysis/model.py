"""Closed-form performance models, cross-validated against simulation.

For design-space exploration you want answers without running the cycle
simulator; these are the standard first-order NoC models specialised to the
five compared architectures:

* **zero-load latency**: injection + per-hop pipeline (2 cycles + link
  latency) + expected token wait + serialization tail of an S-flit packet;
* **saturation throughput**: the binding resource's capacity over its
  offered share -- dedicated wireless channels and gateway waveguides for
  OWN, DOR channel load for the meshes, home-waveguide load for the
  crossbar, up-waveguide load for the Clos. Token media derate by
  S*cpf / (S*cpf + arb) (the inter-packet token gap).

The test suite (`tests/analysis/test_model.py`) holds every prediction to
the measured value within first-order-model tolerances -- the strongest
whole-system validation in the repo, since an error in either the model or
the simulator breaks the agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

#: Head-flit cost of one router traversal beyond the link latency: SA + the
#: RC/VCA stages overlapped with arrival (see repro.noc.simulator docstring).
ROUTER_PIPELINE_CYCLES = 2


@dataclass(frozen=True)
class PredictedPerformance:
    """Model output for one (topology, packet size) point."""

    zero_load_latency: float
    saturation_rate: float  # offered flits/core/cycle at the binding bound
    binding_resource: str


def _token_utilisation(packet_flits: int, cycles_per_flit: int, arb_latency: int) -> float:
    """Fraction of a token medium's slots that carry payload."""
    busy = packet_flits * cycles_per_flit
    return busy / (busy + arb_latency)


# --------------------------------------------------------------------- #
# CMESH
# --------------------------------------------------------------------- #


def predict_cmesh(
    n_cores: int = 256, packet_flits: int = 4, cycles_per_flit: int = 3
) -> PredictedPerformance:
    """Concentrated mesh under uniform random with XY DOR."""
    n_routers = n_cores // 4
    k = int(math.isqrt(n_routers))
    # Mean Manhattan distance between uniform random routers: 2(k^2-1)/(3k)
    # per Dally/Towles (both coordinates, unordered pairs).
    avg_hops = 2.0 * (k * k - 1) / (3.0 * k)
    t0 = (
        1.0  # injection
        + avg_hops * (ROUTER_PIPELINE_CYCLES + 1)  # mesh traversals
        + (ROUTER_PIPELINE_CYCLES + 1)  # ejection
        + (packet_flits - 1) * cycles_per_flit  # serialization tail
    )
    # Max DOR channel load under UN: (k/4) * per-router injection rate.
    capacity = 1.0 / cycles_per_flit
    sat_router = capacity / (k / 4.0)
    return PredictedPerformance(t0, sat_router / 4.0, "centre mesh channel")


# --------------------------------------------------------------------- #
# OptXB
# --------------------------------------------------------------------- #


def predict_optxb(
    n_cores: int = 256,
    packet_flits: int = 4,
    cycles_per_flit: int = 4,
    token_latency: int = 10,
    waveguide_latency: int = 2,
) -> PredictedPerformance:
    n_routers = n_cores // 4
    t0 = (
        1.0
        + (ROUTER_PIPELINE_CYCLES + waveguide_latency + token_latency)  # crossbar hop
        + (ROUTER_PIPELINE_CYCLES + 1)  # ejection
        + (packet_flits - 1) * cycles_per_flit
    )
    util = _token_utilisation(packet_flits, cycles_per_flit, token_latency)
    capacity = util / cycles_per_flit
    # Home waveguide load: 4 cores inject toward it from elsewhere.
    per_wg_load_per_lambda = 4.0 * (n_routers - 1) / n_routers
    return PredictedPerformance(
        t0, capacity / per_wg_load_per_lambda, "home waveguide"
    )


# --------------------------------------------------------------------- #
# p-Clos
# --------------------------------------------------------------------- #


def predict_pclos(
    n_cores: int = 256,
    n_middles: int = 16,
    packet_flits: int = 4,
    token_latency: int = 2,
    waveguide_latency: int = 2,
) -> PredictedPerformance:
    t0 = (
        1.0
        + 2 * (ROUTER_PIPELINE_CYCLES + waveguide_latency + token_latency)  # up+down
        + (ROUTER_PIPELINE_CYCLES + 1)
        + (packet_flits - 1)
    )
    util = _token_utilisation(packet_flits, 1, token_latency)
    per_bus_load = n_cores / n_middles  # every packet crosses one up-bus
    return PredictedPerformance(t0, util / per_bus_load, "up waveguide")


# --------------------------------------------------------------------- #
# wCMESH
# --------------------------------------------------------------------- #


def predict_wcmesh(
    n_cores: int = 256, packet_flits: int = 4, wireless_cycles_per_flit: int = 2
) -> PredictedPerformance:
    n_routers = n_cores // 4
    k = int(math.isqrt(n_routers)) // 2  # wireless cluster grid side
    inter_share = 1.0 - 1.0 / (k * k)  # traffic leaving its cluster
    avg_wireless_hops = 2.0 * (k * k - 1) / (3.0 * k)
    # electrical in/out hops (3/4 of sources are not the wireless router):
    t0 = (
        1.0
        + 0.75 * (ROUTER_PIPELINE_CYCLES + 1) * 2  # crossbar in + out
        + inter_share * avg_wireless_hops * (ROUTER_PIPELINE_CYCLES + 1)
        + (ROUTER_PIPELINE_CYCLES + 1)  # ejection
        + (packet_flits - 1) * wireless_cycles_per_flit
    )
    capacity = 1.0 / wireless_cycles_per_flit
    # Max wireless channel load: (k/4) * per-cluster injection (16 cores).
    sat = capacity / ((k / 4.0) * 16.0 * inter_share)
    return PredictedPerformance(t0, sat, "centre wireless link")


# --------------------------------------------------------------------- #
# OWN-256
# --------------------------------------------------------------------- #


def predict_own256(
    packet_flits: int = 4,
    photonic_latency: int = 2,
    photonic_token: int = 1,
    wireless_latency: int = 1,
    wireless_cycles_per_flit: int = 1,
) -> PredictedPerformance:
    n_cores, tiles, clusters = 256, 16, 4
    p_intra_tile = 3.0 / 255.0
    p_intra_cluster = 60.0 / 255.0
    p_inter = 192.0 / 255.0

    phot_hop = ROUTER_PIPELINE_CYCLES + photonic_latency + photonic_token
    wifi_hop = ROUTER_PIPELINE_CYCLES + wireless_latency
    # Inter-cluster: photonic to gateway (15/16 of sources), wireless,
    # photonic to destination tile (15/16 of destinations).
    gateway_miss = (tiles - 1) / tiles
    hops_inter = gateway_miss * phot_hop + wifi_hop + gateway_miss * phot_hop
    t0 = (
        1.0
        + p_intra_cluster * phot_hop
        + p_inter * hops_inter
        + (ROUTER_PIPELINE_CYCLES + 1)
        + (packet_flits - 1) * max(1, wireless_cycles_per_flit)
    )
    # Binding bounds:
    util_wg = _token_utilisation(packet_flits, 1, photonic_token)
    # Gateway home waveguide: inter-cluster ingress for one destination
    # cluster (64 cores x 1/4 of their traffic x 192/255 inter share wears
    # the pair's single gateway) + its own tile's share of local traffic.
    ingress_per_lambda = 64.0 * (1.0 / 4.0) * gateway_miss + 64.0 * p_intra_cluster / tiles
    sat_gateway = util_wg / ingress_per_lambda
    # Wireless channel: the same pair traffic at full channel rate.
    cap_wifi = 1.0 / wireless_cycles_per_flit
    sat_channel = cap_wifi / (64.0 / 4.0)
    if sat_gateway <= sat_channel:
        return PredictedPerformance(t0, sat_gateway, "gateway waveguide")
    return PredictedPerformance(t0, sat_channel, "wireless channel")


#: Registry for tests and CLI use.
PREDICTORS: Dict[str, callable] = {
    "cmesh256": predict_cmesh,
    "optxb256": predict_optxb,
    "pclos256": predict_pclos,
    "wcmesh256": predict_wcmesh,
    "own256": predict_own256,
}
