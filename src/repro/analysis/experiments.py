"""Experiment runners: one per table and figure of the paper's evaluation.

Every runner returns an :class:`ExperimentResult` whose ``rows`` carry the
same quantities the paper reports and whose ``rendered`` string prints the
table. Benchmarks in ``benchmarks/`` call these with ``quick=True`` (short
measurement windows); ``examples/reproduce_paper.py`` runs the full set.

Paper-expected shapes are recorded in each docstring and cross-checked in
EXPERIMENTS.md against measured output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sweep import SweepResult, compare_saturation, load_sweep, run_point
from repro.analysis.tables import format_table
from repro.core import (
    build_own256,
    build_own1024,
    own256_channels,
    own1024_channels,
    sdm_frequency_reuse_groups,
)
from repro.noc.simulator import Simulator
from repro.power import (
    CONFIGURATIONS,
    PowerModel,
    SCENARIOS,
    channels_for_config,
    config_average_energy_pj_per_bit,
    measure_power,
    wireless_channel_table,
)
from repro.rf import ClassABPA, CascodeLNA, ColpittsOscillator, LinkBudget
from repro.runtime import (
    ControlSpec,
    Executor,
    FaultSpec,
    RunSpec,
    build_ref,
    execute_inline,
    get_executor,
)
from repro.traffic import SyntheticTraffic, TrafficPattern


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment: str
    headers: List[str]
    rows: List[List[object]]
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def rendered(self) -> str:
        return format_table(self.headers, self.rows, title=self.experiment)


# --------------------------------------------------------------------- #
# Topology registries used by the figure experiments
# --------------------------------------------------------------------- #

#: Paper display name -> execution-engine topology reference. The figure
#: experiments submit these as :class:`~repro.runtime.spec.RunSpec`s so
#: every simulation point is cacheable and parallelisable.
SPEC_BUILDERS_256: Dict[str, Tuple[str, Dict[str, object]]] = {
    "CMESH": ("cmesh", {"n_cores": 256}),
    "wCMESH": ("wcmesh", {"n_cores": 256}),
    "OptXB": ("optxb", {"n_cores": 256}),
    "p-Clos": ("pclos", {"n_cores": 256}),
    "OWN": ("own256", {}),
}

SPEC_BUILDERS_1024: Dict[str, Tuple[str, Dict[str, object]]] = {
    "CMESH": ("cmesh", {"n_cores": 1024}),
    "wCMESH": ("wcmesh", {"n_cores": 1024}),
    "OptXB": ("optxb", {"n_cores": 1024}),
    "p-Clos": ("pclos", {"n_cores": 1024, "n_middles": 32}),
    "OWN": ("own1024", {}),
}


def builders_256() -> Dict[str, Callable]:
    """Legacy callable view of :data:`SPEC_BUILDERS_256`."""
    return {
        name: (lambda ref=ref: build_ref(ref))
        for name, ref in SPEC_BUILDERS_256.items()
    }


def builders_1024() -> Dict[str, Callable]:
    """Legacy callable view of :data:`SPEC_BUILDERS_1024`."""
    return {
        name: (lambda ref=ref: build_ref(ref))
        for name, ref in SPEC_BUILDERS_1024.items()
    }


# --------------------------------------------------------------------- #
# Tables I, II, III, IV
# --------------------------------------------------------------------- #


def table1_channels() -> ExperimentResult:
    """Table I: the 12 OWN-256 wireless connections by distance class."""
    rows = [
        [c.channel_index, c.name, c.distance_class, round(c.distance_mm, 1)]
        for c in own256_channels()
    ]
    return ExperimentResult(
        "Table I: OWN-256 wireless connections",
        ["channel", "link", "class", "distance_mm"],
        rows,
        notes={"sdm_groups": sdm_frequency_reuse_groups()},
    )


def table2_channels_1024() -> ExperimentResult:
    """Table II: OWN-1024 inter-/intra-group channel allocation."""
    rows = [
        [
            c.channel_index,
            f"g{c.src_group}->g{c.dst_group}",
            c.tx,
            "SWMR multicast" if c.src_group != c.dst_group else "intra-group",
            c.distance_class,
        ]
        for c in own1024_channels()
    ]
    return ExperimentResult(
        "Table II: OWN-1024 wireless channels",
        ["channel", "groups", "antenna", "mode", "class"],
        rows,
    )


def table3_wireless_tech() -> ExperimentResult:
    """Table III: 16-channel frequency/technology/energy plan, 2 scenarios."""
    rows: List[List[object]] = []
    for num, scen in SCENARIOS.items():
        for spec in wireless_channel_table(scen):
            rows.append(
                [
                    num,
                    spec.index,
                    spec.freq_ghz,
                    spec.bandwidth_ghz,
                    spec.technology,
                    round(spec.energy_pj_per_bit, 3),
                    spec.role,
                ]
            )
    return ExperimentResult(
        "Table III: wireless channel plan (ideal + conservative)",
        ["scenario", "ch", "freq_GHz", "BW_GHz", "tech", "pJ/bit", "role"],
        rows,
    )


def table4_configs() -> ExperimentResult:
    """Table IV: the four range->technology configurations + mean energies."""
    rows: List[List[object]] = []
    for cfg, mapping in CONFIGURATIONS.items():
        for num, scen in SCENARIOS.items():
            rows.append(
                [
                    cfg,
                    mapping["C2C"],
                    mapping["E2E"],
                    mapping["SR"],
                    num,
                    round(config_average_energy_pj_per_bit(cfg, scen), 4),
                ]
            )
    return ExperimentResult(
        "Table IV: WiNoC configurations",
        ["config", "long(C2C)", "medium(E2E)", "short(SR)", "scenario", "avg_pJ/bit"],
        rows,
    )


# --------------------------------------------------------------------- #
# Figures 3 and 4: RF substrate
# --------------------------------------------------------------------- #


def fig3_link_budget() -> ExperimentResult:
    """Fig. 3: required TX power vs distance for 0/5/10 dBi antennas.

    Paper anchor: >= 4 dBm at 50 mm with isotropic antennas, 32 Gbps,
    90 GHz carrier.
    """
    budget = LinkBudget()
    distances = [5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
    gains = [0.0, 5.0, 10.0]
    grid = budget.sweep(distances, gains)
    rows = []
    for j, d in enumerate(distances):
        rows.append([d] + [round(float(grid[i, j]), 2) for i in range(len(gains))])
    return ExperimentResult(
        "Fig. 3: OOK link budget (TX power dBm vs distance)",
        ["distance_mm"] + [f"{g:.0f}dBi" for g in gains],
        rows,
        notes={"anchor_50mm_0dBi_dbm": budget.required_tx_power_dbm(50.0)},
    )


def fig4_transceiver() -> ExperimentResult:
    """Fig. 4: oscillator PSD/phase noise, PA gain/compression, LNA gain.

    Paper anchors: 90 GHz oscillation, ~-86 dBc/Hz @ 1 MHz; PA peak gain
    3.5 dB, ~20 GHz 2-dB bandwidth, P1dB ~5 dBm, 14 mW DC; LNA 10 dB gain.
    """
    osc = ColpittsOscillator()
    pa = ClassABPA()
    lna = CascodeLNA()
    freqs = np.arange(70.0, 111.0, 5.0)
    rows = []
    for f in freqs:
        rows.append(
            [float(f), round(pa.gain_db(float(f)), 2), round(lna.gain_db(float(f)), 2)]
        )
    return ExperimentResult(
        "Fig. 4: transceiver building blocks (gain vs frequency)",
        ["freq_GHz", "PA_gain_dB", "LNA_gain_dB"],
        rows,
        notes={
            "osc_freq_ghz": osc.frequency_ghz,
            "osc_pn_1mhz_dbc": osc.phase_noise_dbc_hz(1e6),
            "pa_p1db_dbm": pa.compression_point_dbm(),
            "pa_dc_mw": pa.dc_power_mw,
            "lna_peak_gain_db": lna.gain_db(lna.center_ghz),
        },
    )


# --------------------------------------------------------------------- #
# Figure 5: average wireless link power per configuration
# --------------------------------------------------------------------- #


def fig5_wireless_power(
    quick: bool = False, rate: float = 0.03, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Fig. 5: avg wireless link power, configs 1-4 x scenarios 1-2, UN.

    Paper shape: configs 1 and 3 (SiGe long-range) highest under both
    scenarios; config 2 cuts config 1 by ~60 % (S1) / ~47 % (S2); config 4
    by ~80 % (S1) / ~57 % (S2).
    """
    cycles = 800 if quick else 2000
    power_pairs = tuple(
        (cfg, scen_num) for scen_num in SCENARIOS for cfg in sorted(CONFIGURATIONS)
    )
    spec = RunSpec.create(
        "own256", pattern="UN", rate=rate, cycles=cycles, seed=11, power=power_pairs
    )
    run = get_executor(executor).run_one(spec)

    rows: List[List[object]] = []
    per_cfg: Dict[tuple, float] = {}
    for scen_num in SCENARIOS:
        for cfg in sorted(CONFIGURATIONS):
            avg_mw = run.power_for(cfg, scen_num)["avg_wireless_link_mw"]
            per_cfg[(scen_num, cfg)] = avg_mw
            rows.append([scen_num, cfg, round(avg_mw, 3)])
    notes = {}
    for scen_num in SCENARIOS:
        base = per_cfg[(scen_num, 1)]
        notes[f"s{scen_num}_reduction_cfg2_pct"] = 100 * (1 - per_cfg[(scen_num, 2)] / base)
        notes[f"s{scen_num}_reduction_cfg4_pct"] = 100 * (1 - per_cfg[(scen_num, 4)] / base)
    return ExperimentResult(
        "Fig. 5: average wireless link power (mW/link), random traffic",
        ["scenario", "config", "avg_link_power_mW"],
        rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Figure 6: 256-core power breakdown
# --------------------------------------------------------------------- #


def fig6_power_256(
    quick: bool = False, rate: float = 0.03, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Fig. 6: component power for all 256-core architectures plus the four
    OWN configurations, uniform random traffic.

    Paper shape: OptXB least; OWN cfg4 next (about 2x OptXB); p-Clos
    slightly above OptXB; wCMESH above OWN; CMESH the most (OWN saves
    "in excess of 30%").
    """
    cycles = 800 if quick else 2000
    rows: List[List[object]] = []
    totals: Dict[str, float] = {}

    names = list(SPEC_BUILDERS_256)
    specs = []
    for name in names:
        key, kwargs = SPEC_BUILDERS_256[name]
        power = (
            tuple((cfg, 1) for cfg in sorted(CONFIGURATIONS))
            if name == "OWN"
            else ((4, 1),)
        )
        specs.append(
            RunSpec.create(
                key, pattern="UN", rate=rate, cycles=cycles, seed=11,
                topology_kwargs=kwargs, power=power,
            )
        )
    for name, run in zip(names, get_executor(executor).run(specs)):
        if name == "OWN":
            for cfg in sorted(CONFIGURATIONS):
                pb = run.power_for(cfg, 1)
                label = f"OWN-cfg{cfg}"
                totals[label] = pb["total_w"]
                rows.append(
                    [label, round(pb["router_w"], 3), round(pb["electrical_link_w"], 3),
                     round(pb["photonic_w"], 3), round(pb["wireless_w"], 3),
                     round(pb["total_w"], 3)]
                )
        else:
            pb = run.power_for(4, 1)
            totals[name] = pb["total_w"]
            rows.append(
                [name, round(pb["router_w"], 3), round(pb["electrical_link_w"], 3),
                 round(pb["photonic_w"], 3), round(pb["wireless_w"], 3),
                 round(pb["total_w"], 3)]
            )
    own = totals["OWN-cfg4"]
    notes = {
        "cmesh_vs_own_pct": 100 * (totals["CMESH"] / own - 1),
        "wcmesh_vs_own_pct": 100 * (totals["wCMESH"] / own - 1),
        "optxb_ratio": totals["OptXB"] / own,
        "pclos_over_optxb": totals["p-Clos"] / totals["OptXB"],
    }
    return ExperimentResult(
        "Fig. 6: 256-core power breakdown [W], UN traffic",
        ["network", "router", "electrical", "photonic", "wireless", "total"],
        rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Figure 7: 256-core throughput and latency
# --------------------------------------------------------------------- #

PAPER_PATTERNS = ("UN", "BR", "MT", "PS", "NBR")


def fig7a_throughput_256(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Fig. 7(a): saturation throughput per synthetic pattern, 256 cores.

    Paper shape: throughputs are close across networks (similar bisection);
    OWN 1-2 % above CMESH / wCMESH; photonic nets marginally better than
    OWN on some patterns.
    """
    cycles = 900 if quick else 1500
    rates = (0.02, 0.03, 0.04) if quick else (0.02, 0.03, 0.04, 0.05, 0.06)
    rows: List[List[object]] = []
    for pattern in PAPER_PATTERNS:
        sweeps = compare_saturation(
            SPEC_BUILDERS_256, pattern, rates, cycles=cycles, executor=executor
        )
        row: List[object] = [pattern]
        for name in SPEC_BUILDERS_256:
            row.append(round(sweeps[name].saturation_throughput(), 4))
        rows.append(row)
    return ExperimentResult(
        "Fig. 7(a): saturation throughput [flits/core/cycle], 256 cores",
        ["pattern"] + list(SPEC_BUILDERS_256),
        rows,
    )


def fig7bc_latency_256(
    pattern: str = "UN", quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Fig. 7(b, c): latency vs offered load for UN (b) and BR (c).

    Paper shape: OWN saturates at the highest load; p-Clos ~10 % earlier;
    CMESH, wCMESH and OptXB ~20 % earlier; OWN's zero-load latency is the
    lowest (the 3-hop diameter), beating CMESH by ~50 % (abstract).
    """
    cycles = 900 if quick else 1500
    rates = (0.01, 0.02, 0.03, 0.04) if quick else (0.01, 0.02, 0.03, 0.035, 0.04, 0.045, 0.05, 0.06)
    results: Dict[str, SweepResult] = compare_saturation(
        SPEC_BUILDERS_256, pattern, rates, cycles=cycles, executor=executor
    )
    rows: List[List[object]] = []
    for name, sweep in results.items():
        for p in sweep.points:
            rows.append([name, p.offered, round(p.latency, 1), round(p.throughput, 4)])
    notes = {
        f"{name}_saturation": sweep.saturation_offered()
        for name, sweep in results.items()
    }
    notes.update(
        {f"{name}_zero_load": sweep.zero_load_latency() for name, sweep in results.items()}
    )
    return ExperimentResult(
        f"Fig. 7(b/c): latency vs load, {pattern} traffic, 256 cores",
        ["network", "offered", "latency_cycles", "accepted"],
        rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Figure 8: 1024-core throughput and power
# --------------------------------------------------------------------- #

FIG8_PATTERNS = ("UN", "BR", "PS")


def fig8a_throughput_1024(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Fig. 8(a): 1024-core throughput on select synthetic traces.

    Paper shape: "The throughput variation is not significant across
    different architectures."
    """
    cycles = 600 if quick else 1200
    rates = (0.006, 0.01) if quick else (0.006, 0.01, 0.014)
    rows: List[List[object]] = []
    for pattern in FIG8_PATTERNS:
        sweeps = compare_saturation(
            SPEC_BUILDERS_1024, pattern, rates, cycles=cycles, executor=executor
        )
        row: List[object] = [pattern]
        for name in SPEC_BUILDERS_1024:
            row.append(round(sweeps[name].saturation_throughput(), 4))
        rows.append(row)
    return ExperimentResult(
        "Fig. 8(a): saturation throughput [flits/core/cycle], 1024 cores",
        ["pattern"] + list(SPEC_BUILDERS_1024),
        rows,
    )


def fig8b_power_1024(
    quick: bool = False, rate: float = 0.01, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Fig. 8(b): average power per packet, 1024 cores.

    Paper shape: OWN ~30 % above OptXB (OptXB keeps the power edge; its
    objection is component count); wCMESH's wireless link power dominates
    its budget due to multi-hop XY routing; OWN slightly below wCMESH.
    """
    cycles = 600 if quick else 1500
    rows: List[List[object]] = []
    totals: Dict[str, float] = {}
    names = list(SPEC_BUILDERS_1024)
    specs = [
        RunSpec.create(
            SPEC_BUILDERS_1024[name][0], pattern="UN", rate=rate, cycles=cycles,
            seed=11, topology_kwargs=SPEC_BUILDERS_1024[name][1], power=((4, 1),),
        )
        for name in names
    ]
    for name, run in zip(names, get_executor(executor).run(specs)):
        pb = run.power_for(4, 1)
        totals[name] = pb["total_w"]
        rows.append(
            [name, round(pb["router_w"], 2), round(pb["electrical_link_w"], 2),
             round(pb["photonic_w"], 2), round(pb["wireless_w"], 2),
             round(pb["total_w"], 2), round(pb["energy_per_packet_nj"], 2)]
        )
    notes = {
        "own_over_optxb_pct": 100 * (totals["OWN"] / totals["OptXB"] - 1),
        "own_vs_wcmesh_pct": 100 * (totals["OWN"] / totals["wCMESH"] - 1),
    }
    return ExperimentResult(
        "Fig. 8(b): 1024-core power [W] and energy/packet [nJ], UN traffic",
        ["network", "router", "electrical", "photonic", "wireless", "total", "nJ/packet"],
        rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Ablations (design choices DESIGN.md calls out)
# --------------------------------------------------------------------- #


def ablation_token_latency(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Token cost ablation: OptXB saturation vs token latency.

    Sec. V-B attributes OptXB's throughput dip to token transfer cycles;
    this sweep shows saturation throughput degrading as the token slows.
    """
    cycles = 800 if quick else 1500
    tokens = (0, 2, 4, 10, 20)
    rows = []
    points = [
        run_point(
            ("optxb", {"n_cores": 256, "token_latency": token}),
            "UN",
            0.04,
            cycles=cycles,
            executor=executor,
        )
        for token in tokens
    ]
    for token, point in zip(tokens, points):
        rows.append([token, round(point.latency, 1), round(point.throughput, 4)])
    return ExperimentResult(
        "Ablation: OptXB token latency vs performance (UN @ 0.04)",
        ["token_latency", "latency", "accepted_throughput"],
        rows,
    )


def ablation_antenna_placement(quick: bool = False) -> ExperimentResult:
    """Corner vs centre antenna placement (Sec. III-A's motivation).

    "If all the wireless transceivers were located in close proximity
    (center of the cluster), then all inter-cluster traffic will be
    directed to the center which could lead to load and thermal imbalance.
    Therefore, by isolating the four transceivers to the four corners, we
    balance the load imbalance as well as thermal impact."

    The discriminating metric is *spatial concentration*: the share of a
    cluster's router activity that lands inside its hottest 2x2-tile window
    (a thermal-density proxy). Corner placement spreads gateway work across
    four distant corners; centre placement stacks all four gateways into
    one contiguous window.
    """
    cycles = 800 if quick else 1500
    rows = []
    for placement in ("corners", "center"):
        built, sim, _ = execute_inline(
            RunSpec.create(
                "own256", pattern="UN", rate=0.035, cycles=cycles, warmup=300,
                seed=11, topology_kwargs={"antenna_placement": placement},
            )
        )
        net = built.network
        # Per-cluster activity heatmap over the 4x4 tile grid.
        worst_share = 0.0
        for cluster in range(4):
            grid = np.zeros((4, 4))
            total = 0.0
            for r in net.routers:
                if r.attrs.get("cluster") != cluster:
                    continue
                t = r.attrs["tile"]
                activity = r.buffer_writes + r.buffer_reads + r.xbar_traversals
                grid[t // 4, t % 4] = activity
                total += activity
            if total == 0:
                continue
            windows = [
                grid[i : i + 2, j : j + 2].sum() / total
                for i in range(3)
                for j in range(3)
            ]
            worst_share = max(worst_share, max(windows))
        rows.append(
            [placement, round(sim.mean_latency(), 1), round(sim.throughput(), 4),
             round(worst_share, 3)]
        )
    return ExperimentResult(
        "Ablation: antenna placement (UN @ 0.035)",
        ["placement", "latency", "throughput", "peak_2x2_activity_share"],
        rows,
    )


def ablation_sdm_channels() -> ExperimentResult:
    """SDM frequency reuse: CMOS channel demand vs supply (Sec. V-B).

    Configuration 4 wants 8 CMOS channels but the ideal plan has 4; SDM
    reuse on non-intersecting paths covers the gap.
    """
    rows = []
    for cfg in sorted(CONFIGURATIONS):
        chans = channels_for_config(cfg, SCENARIOS[1])
        reused = sum(1 for c in chans if c.sdm_reused)
        rows.append([cfg, len(chans), reused])
    groups = sdm_frequency_reuse_groups()
    return ExperimentResult(
        "Ablation: SDM frequency reuse demand (scenario 1)",
        ["config", "data_links", "sdm_reused_links"],
        rows,
        notes={"non_intersecting_groups": groups, "n_groups": len(groups)},
    )


def ablation_radix_vs_hops(quick: bool = False) -> ExperimentResult:
    """Radix/hop tradeoff at 1024 cores (the paper's closing observation:
    "reducing the radix can enable building more power-efficient
    architectures, however the latency may increase due to multiple hops").
    """
    cycles = 500 if quick else 1000
    rows = []
    for name, ref in (("OWN", ("own1024", {})), ("wCMESH", ("wcmesh", {"n_cores": 1024}))):
        built, sim, run = execute_inline(
            RunSpec.create(
                ref[0], pattern="UN", rate=0.008, cycles=cycles, seed=11,
                topology_kwargs=ref[1], power=((4, 1),),
            )
        )
        max_radix = max(
            r.attrs.get("paper_radix", r.radix) for r in built.network.routers
        )
        rows.append(
            [name, max_radix, round(sim.stats.avg_hops(), 2),
             round(sim.mean_latency(), 1), round(run.power_for(4, 1)["router_w"], 2)]
        )
    return ExperimentResult(
        "Ablation: radix vs hop count, 1024 cores (UN @ 0.008)",
        ["network", "max_radix", "avg_hops", "latency", "router_power_w"],
        rows,
    )


# --------------------------------------------------------------------- #
# Studies (substrate-backed analyses beyond the paper's figures)
# --------------------------------------------------------------------- #


def study_area_scaling() -> ExperimentResult:
    """Silicon footprint per architecture at 256 and 1024 cores.

    The Sec. I scalability argument in mm^2: the monolithic crossbar's ring
    count makes its photonic area explode 16x from 256 to 1024 cores while
    OWN's decomposed design grows linearly with cluster count.
    """
    from repro.power.area import AreaModel

    model = AreaModel()
    rows: List[List[object]] = []
    for scale, builders in (
        (256, builders_256()),
        (1024, builders_1024()),
    ):
        for name, builder in builders.items():
            built = builder()
            a = model.measure(built)
            rows.append(
                [scale, name, round(a.router_mm2, 2), round(a.wire_mm2, 2),
                 round(a.photonic_mm2, 2), round(a.wireless_mm2, 2),
                 round(a.total_mm2, 2)]
            )
    return ExperimentResult(
        "Study: silicon area [mm^2] per architecture",
        ["cores", "network", "router", "wire", "photonic", "wireless", "total"],
        rows,
    )


def study_thermal(quick: bool = False) -> ExperimentResult:
    """Steady-state thermal comparison under equal traffic.

    Quantifies two paper claims: antenna placement changes the activity
    concentration (Sec. III-A) and big ring inventories pay gradient-chasing
    tuning power (Sec. I).
    """
    from repro.thermal import thermal_report

    cycles = 500 if quick else 1000
    rows: List[List[object]] = []
    cases = [
        ("OWN corners", ("own256", {})),
        ("OWN center", ("own256", {"antenna_placement": "center"})),
        ("OptXB", ("optxb", {"n_cores": 256})),
        ("CMESH", ("cmesh", {"n_cores": 256})),
    ]
    for name, (key, kwargs) in cases:
        built, sim, _ = execute_inline(
            RunSpec.create(
                key, pattern="UN", rate=0.03, cycles=cycles, seed=2,
                topology_kwargs=kwargs,
            )
        )
        rep = thermal_report(built, sim)
        rows.append(
            [name, round(rep.peak_c, 2), round(rep.gradient_c, 2),
             round(rep.tuning_power_w * 1e3, 2), round(rep.total_power_w, 2)]
        )
    return ExperimentResult(
        "Study: steady-state thermals (UN @ 0.03)",
        ["case", "peak_C", "gradient_C", "ring_tuning_mW", "total_W"],
        rows,
    )


def study_component_scaling() -> ExperimentResult:
    """Photonic component counts + worst-path laser power (Sec. I).

    Regenerates the introduction's arithmetic (448 modulators / 7
    waveguides / 28224 detectors at 64x64 SWMR; 7.3 M detectors at
    1024x1024) and adds the insertion-loss consequence: wall-plug laser
    power per waveguide for the monolithic snake vs OWN's cluster snake.
    """
    from repro.photonics import (
        mwsr_crossbar,
        own_inventory,
        swmr_crossbar,
        required_laser_power_mw,
        waveguide_path_loss_db,
    )

    rows: List[List[object]] = []
    for label, count in (
        ("SWMR 64x64", swmr_crossbar(64)),
        ("SWMR 1024x1024", swmr_crossbar(1024)),
        ("OptXB 64r (MWSR)", mwsr_crossbar(64, rings_per_modulator=1)),
        ("OptXB 256r (MWSR)", mwsr_crossbar(256, rings_per_modulator=1)),
        ("OWN-256 photonics", own_inventory(4)),
        ("OWN-1024 photonics", own_inventory(16)),
    ):
        rows.append(
            [label, count.modulators, count.photodetectors, count.waveguides,
             count.rings]
        )
    own_loss = waveguide_path_loss_db(100.0, 15 * 4)
    flat_loss = waveguide_path_loss_db(400.0, 63 * 64)
    notes = {
        "own_cluster_path_loss_db": own_loss,
        "optxb_snake_path_loss_db": flat_loss,
        "own_laser_mw_per_wg": required_laser_power_mw(own_loss, 4),
        "optxb_laser_mw_per_wg": required_laser_power_mw(flat_loss, 64),
    }
    return ExperimentResult(
        "Study: photonic component scaling (Sec. I arithmetic)",
        ["interconnect", "modulators", "detectors", "waveguides", "rings"],
        rows,
        notes=notes,
    )


def study_reconfiguration(quick: bool = False) -> ExperimentResult:
    """Adaptive reconfiguration channels vs static OWN on hotspot traffic."""
    from repro.core.own256 import make_reconfig_controller

    cycles = 1200 if quick else 2500
    rows: List[List[object]] = []
    # Adaptive-controller hook + bespoke hotspot pattern: runs in-process on
    # the simulator directly (per-run packet-id isolation needs no reset).
    for label, with_reconfig in (("static", False), ("reconfigurable", True)):
        built = build_own256(with_reconfiguration=with_reconfig)
        hot = TrafficPattern(
            "HOT", 256, hotspot_fraction=0.6, hotspots=list(range(128, 192))
        )
        sim = Simulator(
            built.network,
            traffic=SyntheticTraffic(256, hot, 0.035, 4, seed=2),
            warmup_cycles=300,
        )
        ctrl = None
        if with_reconfig:
            ctrl = make_reconfig_controller(built, epoch_cycles=300)
            sim.add_hook(ctrl)
        sim.run(cycles)
        rows.append(
            [label, round(sim.mean_latency(), 1), round(sim.throughput(), 4),
             ctrl.summary()["spare_flits"] if ctrl else 0]
        )
    return ExperimentResult(
        "Study: reconfiguration channels (hotspot @ 0.035)",
        ["mode", "latency", "accepted", "spare_flits"],
        rows,
    )


def study_fault_tolerance(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Latency/throughput degradation as wireless channels fail."""
    cycles = 800 if quick else 1500
    fault_sets = [[], [(0, 2)], [(0, 2), (1, 3)], [(0, 2), (1, 3), (2, 1)]]
    specs = [
        RunSpec.create(
            "own256_ft", pattern="UN", rate=0.02, cycles=cycles, warmup=200,
            seed=2, topology_kwargs={"failed_channels": tuple(faults)},
        )
        for faults in fault_sets
    ]
    rows: List[List[object]] = []
    for faults, run in zip(fault_sets, get_executor(executor).run(specs)):
        rows.append(
            [len(faults), round(run.summary["latency_mean"], 1),
             round(run.summary["throughput"], 4),
             round(run.summary["avg_wireless_hops"], 3)]
        )
    return ExperimentResult(
        "Study: channel failures vs performance (UN @ 0.02)",
        ["failed_channels", "latency", "accepted", "avg_wireless_hops"],
        rows,
    )


def study_bursty_traffic(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """OWN-256 under bursty (MMBP) traffic at equal mean load."""
    cycles = 1000 if quick else 2000
    factors = (1.0, 4.0, 8.0)
    specs = [
        RunSpec.create(
            "own256", pattern="UN", rate=0.025, cycles=cycles, warmup=300,
            seed=2, traffic_kind="bursty", burst_factor=burst_factor,
        )
        for burst_factor in factors
    ]
    rows: List[List[object]] = []
    for burst_factor, run in zip(factors, get_executor(executor).run(specs)):
        rows.append(
            [burst_factor, round(run.summary["latency_mean"], 1),
             round(run.summary["latency_p99"], 1),
             round(run.summary["throughput"], 4)]
        )
    return ExperimentResult(
        "Study: burstiness at equal mean load (UN @ 0.025)",
        ["burst_factor", "latency_mean", "latency_p99", "accepted"],
        rows,
    )


def study_degradation(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Graceful degradation under runtime faults (:mod:`repro.faults`).

    Sweeps the interference-burst rate on the 12 wireless data channels
    (transient SNR dips sampled through the OOK BER model, recovered by
    link-layer retransmission) and finishes with a permanent transceiver
    death mid-run, where the health monitor fails the channel over to a
    pinned reconfiguration spare. Expected shape: latency and the
    retransmission-energy overhead grow with burst rate while accepted
    throughput stays at the offered load (nothing is lost, only retried);
    the zero-fault row is bit-identical to a run without the fault layer,
    so every protocol counter is 0. The death row completes with recovered
    packets and one failover instead of a deadlock.

    Each case is a declarative :class:`~repro.runtime.spec.FaultSpec`
    carried by its :class:`~repro.runtime.spec.RunSpec`, so the whole
    degradation sweep is cacheable and parallelisable like any other
    experiment.
    """
    cycles = 1000 if quick else 2000
    rate = 0.02
    burst_rates = (0.0, 0.0005, 0.002, 0.005)

    def base_spec(faults: Optional[FaultSpec], with_failover: bool) -> RunSpec:
        return RunSpec.create(
            "own256_ft",
            pattern="UN",
            rate=rate,
            cycles=cycles,
            warmup=200,
            seed=2,
            topology_kwargs={"with_reconfiguration": with_failover},
            drain=30_000,
            faults=faults,
            power=((4, 1),),
        )

    specs = [
        base_spec(
            FaultSpec(kind="bursty", seed=7, burst_rate=burst_rate,
                      burst_duration=50, snr_penalty_db=5.0),
            with_failover=False,
        )
        for burst_rate in burst_rates
    ]
    specs.append(
        base_spec(
            FaultSpec(kind="death", at=cycles // 4, target_index=0, failover=True),
            with_failover=True,
        )
    )
    labels = [f"bursts@{r}" for r in burst_rates] + ["death+failover"]

    rows: List[List[object]] = []
    notes: Dict[str, object] = {}
    runs = get_executor(executor).run(specs)
    for label, run in zip(labels, runs):
        s = run.summary
        rows.append(
            [
                label,
                round(s["latency_mean"], 1),
                round(s["latency_p99"], 1),
                round(s["throughput"], 4),
                int(s["packets_retransmitted"]),
                int(s["nacks"] + s["timeouts"]),
                int(s["packets_recovered"]),
                int(s["channels_failed_over"]),
                round(run.power_for(4, 1)["retx_overhead_w"] * 1e3, 3),
            ]
        )
    notes["failovers"] = int(runs[-1].summary["channels_failed_over"])
    notes["dead_link"] = runs[-1].meta.get("dead_link")
    return ExperimentResult(
        "Study: fault-rate degradation (UN @ 0.02, 5 dB bursts)",
        ["faults", "latency_mean", "latency_p99", "accepted",
         "retx_pkts", "nack+tmo", "recovered", "failovers", "retx_mw"],
        rows,
        notes=notes,
    )


def study_adaptive(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Closed-loop control vs open-loop failover under hotspot + faults.

    Crosses hotspot traffic (60% of load aimed at cluster 2) with three
    fault scenarios -- none, transient interference bursts on one
    channel, and a permanent transceiver death -- and runs each cell
    twice on OWN-256 with spare hardware:

    - **static**: the open-loop plant --
      :class:`~repro.faults.HealthMonitor` failover pinning spares onto
      dead channels plus the utilisation-ranked periodic re-pointer at
      the same 250-cycle epoch as the adaptive arm. Two-phase draining
      re-assignment (``docs/fault-tolerance.md``) makes periodic
      re-pointing safe under sustained hotspots, so the arm runs
      unmanaged end to end. A channel that fails over stays failed over
      for the rest of the run even after the interference clears.
    - **adaptive**: the same plant driven by a
      :class:`repro.control.ControlLoop` (:class:`ControlSpec`):
      telemetry-ranked spare placement with hysteresis + dwell, probe
      packets that return healed channels to service, and relay
      reweighting for unpinnable failed pairs.

    Expected shape: in the transient-burst cell the adaptive arm
    recovers the channel (``recovered`` > 0) and ends with lower p99
    latency and/or higher accepted throughput than the static arm,
    which permanently sacrifices a spare. In the no-fault cell the two
    arms differ only in placement cadence; in the death cell recovery is
    impossible (probes keep failing) so the arms stay close -- graceful
    degradation, not thrash. Every row carries the telemetry-attribution
    verdict for the cell, and adaptive rows carry the decision-log CRC
    that the CI golden gate pins exactly.
    """
    from repro.analysis.attribution import attribute_metrics

    cycles = 4000 if quick else 10_000
    rate = 0.03
    # Static arms: failover=True wires monitor + controller with the
    # genuine open-loop utilisation-driven re-pointer. Two-phase draining
    # re-assignment makes this safe at any epoch (old spares drain before
    # the channel moves; stragglers take the escape path), so the arms
    # now compare real open-loop re-pointing against the closed loop.
    burst = lambda fail: FaultSpec(  # noqa: E731 - local shorthand
        kind="bursty", burst_rate=0.0004, burst_duration=600,
        snr_penalty_db=14.0, max_channel=1, seed=9, failover=fail,
        reconfig_epoch=250,
    )
    death = lambda fail: FaultSpec(  # noqa: E731
        kind="death", at=cycles // 4, target_index=0, failover=fail,
        reconfig_epoch=250,
    )
    # A zero-rate campaign keeps the plant (monitor + spare hardware)
    # wired in both arms without injecting any fault, so the no-fault
    # cell compares placement policy alone.
    calm = lambda fail: FaultSpec(  # noqa: E731
        kind="bursty", burst_rate=0.0, failover=fail,
        reconfig_epoch=250,
    )
    scenarios = [("hotspot", calm), ("hot+burst", burst), ("hot+death", death)]

    def cell_spec(faults: FaultSpec, control: Optional[ControlSpec], tag: str):
        return RunSpec.create(
            "own256_ft", pattern="HOT", rate=rate, cycles=cycles,
            warmup=400, seed=2, drain=30_000,
            hotspot_fraction=0.6, hotspots=tuple(range(128, 192)),
            topology_kwargs={"with_reconfiguration": True},
            faults=faults, control=control, telemetry=True, tag=tag,
        )

    specs: List[RunSpec] = []
    labels: List[Tuple[str, str]] = []
    for name, make_faults in scenarios:
        specs.append(cell_spec(make_faults(True), None, f"{name}/static"))
        labels.append((name, "static"))
        specs.append(
            cell_spec(
                make_faults(False), ControlSpec(epoch_cycles=250),
                f"{name}/adaptive",
            )
        )
        labels.append((name, "adaptive"))

    rows: List[List[object]] = []
    notes: Dict[str, object] = {}
    runs = get_executor(executor).run(specs)
    for (cell, arm), run in zip(labels, runs):
        s = run.summary
        attribution = attribute_metrics(run.metrics or {})
        rows.append(
            [
                cell,
                arm,
                round(s["latency_mean"], 1),
                round(s["latency_p99"], 1),
                round(s["throughput"], 4),
                int(s["channels_failed_over"]),
                int(s.get("channels_recovered_ctl", 0)),
                int(s.get("control_decisions", 0)),
                int(s["control_log_crc"]) if "control_log_crc" in s else "-",
                attribution.verdict if attribution else "-",
            ]
        )
    # Per-cell verdict: did closing the loop pay for itself?
    by_cell: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (cell, arm), run in zip(labels, runs):
        by_cell.setdefault(cell, {})[arm] = run.summary
    wins = {
        cell: {
            "p99_gain": arms["static"]["latency_p99"] - arms["adaptive"]["latency_p99"],
            "throughput_gain": arms["adaptive"]["throughput"] - arms["static"]["throughput"],
        }
        for cell, arms in by_cell.items()
    }
    notes["adaptive_gains"] = wins
    notes["recovered_transient"] = int(
        by_cell["hot+burst"]["adaptive"].get("channels_recovered_ctl", 0)
    )
    return ExperimentResult(
        "Study: adaptive control vs static failover (HOT @ 0.03)",
        ["cell", "arm", "latency_mean", "latency_p99", "accepted",
         "failovers", "recovered", "decisions", "log_crc", "verdict"],
        rows,
        notes=notes,
    )


def study_workloads(
    quick: bool = False, executor: Optional[Executor] = None
) -> ExperimentResult:
    """Application workloads across the scenario matrix (OWN-256).

    Runs every application model from :mod:`repro.workloads` -- the
    three generator families (microservice request DAGs, MPI
    collectives, directory coherence) plus the mixed and adversarial
    blends -- on OWN-256 under {clean, interference-burst} fault
    campaigns and {ideal, conservative} wireless technology scenarios
    (Table III), each cell annotated with its bottleneck-attribution
    verdict. The synthetic-traffic figures answer "how does the fabric
    handle rate X of pattern Y"; this study answers "what does a real
    application shape see, and what limits it".

    Expected shape: collectives and both blends saturate the wireless
    broadcast channels (wireless-occupancy verdicts), coherence is
    injection-bound at the home nodes, the sparse microservice DAG is
    token-wait bound, the blends show the worst p99, and the
    conservative wireless scenario costs power but not latency (the
    technology scenario scales transceiver energy, not timing).
    """
    from repro.workloads import run_scenarios, scenario_matrix

    cycles, warmup = (600, 150) if quick else (1500, 300)
    cells = scenario_matrix(
        topologies=("own256",), cycles=cycles, warmup=warmup
    )
    outcomes = run_scenarios(cells, executor)
    rows = [o.row() for o in outcomes]
    by_verdict: Dict[str, int] = {}
    for o in outcomes:
        by_verdict[o.verdict] = by_verdict.get(o.verdict, 0) + 1
    worst = max(outcomes, key=lambda o: o.result.summary["latency_p99"])
    notes: Dict[str, object] = {
        "verdict_histogram": by_verdict,
        "worst_p99_cell": worst.cell.key,
        "worst_p99": round(worst.result.summary["latency_p99"], 1),
    }
    from repro.workloads.scenarios import SCENARIO_HEADERS

    return ExperimentResult(
        "Study: application workloads x faults x wireless (OWN-256)",
        list(SCENARIO_HEADERS),
        rows,
        notes=notes,
    )


#: Registry used by benches and the reproduce-everything example.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_channels,
    "table2": table2_channels_1024,
    "table3": table3_wireless_tech,
    "table4": table4_configs,
    "fig3": fig3_link_budget,
    "fig4": fig4_transceiver,
    "fig5": fig5_wireless_power,
    "fig6": fig6_power_256,
    "fig7a": fig7a_throughput_256,
    "fig7bc": fig7bc_latency_256,
    "fig8a": fig8a_throughput_1024,
    "fig8b": fig8b_power_1024,
    "ablation_token": ablation_token_latency,
    "ablation_antenna": ablation_antenna_placement,
    "ablation_sdm": ablation_sdm_channels,
    "ablation_radix": ablation_radix_vs_hops,
    "study_area": study_area_scaling,
    "study_thermal": study_thermal,
    "study_components": study_component_scaling,
    "study_reconfig": study_reconfiguration,
    "study_faults": study_fault_tolerance,
    "study_bursty": study_bursty_traffic,
    "study_degradation": study_degradation,
    "study_adaptive": study_adaptive,
    "study_workloads": study_workloads,
}
