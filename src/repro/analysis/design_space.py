"""Design-space exploration over OWN's configuration knobs.

The paper's own exploration is a 4x2 grid — Table IV configurations against
the ideal/conservative scenarios — evaluated by hand. This module automates
the sweep across any subset of OWN's knobs (wireless technology
configuration, Table III scenario, VC buffering, wireless serialization),
simulates each point, scores power and latency together, and extracts the
**Pareto frontier** — the tool a designer reaches for when the question is
"which configuration should I build?" rather than "what does configuration
4 do?".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.own256 import build_own256
from repro.noc.packet import reset_packet_ids
from repro.noc.simulator import Simulator
from repro.power import SCENARIOS, measure_power
from repro.traffic.generator import SyntheticTraffic


@dataclass(frozen=True)
class DesignPoint:
    """One candidate OWN-256 design."""

    config_id: int
    scenario: int
    vc_depth: int = 8
    wireless_cycles_per_flit: int = 1

    def label(self) -> str:
        return (
            f"cfg{self.config_id}/s{self.scenario}/vc{self.vc_depth}"
            f"/wcpf{self.wireless_cycles_per_flit}"
        )


@dataclass
class EvaluatedPoint:
    """A design point plus its measured merit figures."""

    point: DesignPoint
    latency: float
    throughput: float
    power_w: float
    energy_per_packet_nj: float

    def dominates(self, other: "EvaluatedPoint") -> bool:
        """Pareto dominance on (latency low, power low, throughput high)."""
        no_worse = (
            self.latency <= other.latency
            and self.power_w <= other.power_w
            and self.throughput >= other.throughput
        )
        strictly_better = (
            self.latency < other.latency
            or self.power_w < other.power_w
            or self.throughput > other.throughput
        )
        return no_worse and strictly_better


def default_space() -> List[DesignPoint]:
    """The paper's 4x2 grid: every Table IV configuration under both
    Table III scenarios (with the scenario's matching serialization)."""
    points = []
    for config_id, scenario in itertools.product((1, 2, 3, 4), (1, 2)):
        points.append(
            DesignPoint(
                config_id=config_id,
                scenario=scenario,
                wireless_cycles_per_flit=1 if scenario == 1 else 2,
            )
        )
    return points


def evaluate_point(
    point: DesignPoint,
    rate: float = 0.03,
    cycles: int = 1000,
    warmup: int = 300,
    seed: int = 6,
) -> EvaluatedPoint:
    """Simulate one design point and measure its merit figures."""
    if point.scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {point.scenario}")
    reset_packet_ids()
    built = build_own256(
        vc_depth=point.vc_depth,
        wireless_cycles_per_flit=point.wireless_cycles_per_flit,
    )
    sim = Simulator(
        built.network,
        traffic=SyntheticTraffic(256, "UN", rate, 4, seed=seed),
        warmup_cycles=warmup,
    )
    sim.run(cycles)
    breakdown = measure_power(
        built, sim, config_id=point.config_id, scenario=point.scenario
    )
    return EvaluatedPoint(
        point=point,
        latency=sim.mean_latency(),
        throughput=sim.throughput(),
        power_w=breakdown.total_w,
        energy_per_packet_nj=breakdown.energy_per_packet_nj,
    )


def pareto_frontier(evaluated: Sequence[EvaluatedPoint]) -> List[EvaluatedPoint]:
    """Non-dominated subset, sorted by power."""
    frontier = [
        e
        for e in evaluated
        if not any(other.dominates(e) for other in evaluated if other is not e)
    ]
    return sorted(frontier, key=lambda e: e.power_w)


@dataclass
class ExplorationResult:
    """Full sweep output."""

    evaluated: List[EvaluatedPoint] = field(default_factory=list)
    frontier: List[EvaluatedPoint] = field(default_factory=list)

    def best_by(self, metric: str) -> EvaluatedPoint:
        # Ties on the primary metric (e.g. latency, which only depends on
        # the network shape) break towards lower power.
        key = {
            "power": lambda e: (e.power_w, e.latency),
            "latency": lambda e: (e.latency, e.power_w),
            "energy_per_packet": lambda e: (e.energy_per_packet_nj, e.latency),
        }.get(metric)
        if key is None:
            raise ValueError(f"unknown metric {metric!r}")
        return min(self.evaluated, key=key)

    def rows(self) -> List[List[object]]:
        out = []
        frontier_ids = {id(e) for e in self.frontier}
        for e in sorted(self.evaluated, key=lambda e: e.power_w):
            out.append(
                [
                    e.point.label(),
                    round(e.latency, 1),
                    round(e.throughput, 4),
                    round(e.power_w, 3),
                    round(e.energy_per_packet_nj, 3),
                    "*" if id(e) in frontier_ids else "",
                ]
            )
        return out


def explore(
    points: Optional[Iterable[DesignPoint]] = None,
    rate: float = 0.03,
    cycles: int = 1000,
    warmup: int = 300,
    seed: int = 6,
) -> ExplorationResult:
    """Evaluate a design space and extract its Pareto frontier.

    Simulation results are cached per unique *network* shape (vc_depth,
    serialization): power configurations re-score the same run, so the
    paper's 4x2 grid costs two simulations, not eight.
    """
    pts = list(points) if points is not None else default_space()
    sim_cache: Dict[Tuple[int, int], Tuple[object, object]] = {}
    evaluated: List[EvaluatedPoint] = []
    for point in pts:
        shape = (point.vc_depth, point.wireless_cycles_per_flit)
        if shape not in sim_cache:
            reset_packet_ids()
            built = build_own256(
                vc_depth=point.vc_depth,
                wireless_cycles_per_flit=point.wireless_cycles_per_flit,
            )
            sim = Simulator(
                built.network,
                traffic=SyntheticTraffic(256, "UN", rate, 4, seed=seed),
                warmup_cycles=warmup,
            )
            sim.run(cycles)
            sim_cache[shape] = (built, sim)
        built, sim = sim_cache[shape]
        breakdown = measure_power(
            built, sim, config_id=point.config_id, scenario=point.scenario
        )
        evaluated.append(
            EvaluatedPoint(
                point=point,
                latency=sim.mean_latency(),
                throughput=sim.throughput(),
                power_w=breakdown.total_w,
                energy_per_packet_nj=breakdown.energy_per_packet_nj,
            )
        )
    return ExplorationResult(evaluated=evaluated, frontier=pareto_frontier(evaluated))
