"""Design-space exploration over OWN's configuration knobs.

The paper's own exploration is a 4x2 grid — Table IV configurations against
the ideal/conservative scenarios — evaluated by hand. This module automates
the sweep across any subset of OWN's knobs (wireless technology
configuration, Table III scenario, VC buffering, wireless serialization),
simulates each point, scores power and latency together, and extracts the
**Pareto frontier** — the tool a designer reaches for when the question is
"which configuration should I build?" rather than "what does configuration
4 do?".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.power import SCENARIOS
from repro.runtime import Executor, RunResult, RunSpec, get_executor


@dataclass(frozen=True)
class DesignPoint:
    """One candidate OWN-256 design."""

    config_id: int
    scenario: int
    vc_depth: int = 8
    wireless_cycles_per_flit: int = 1

    def label(self) -> str:
        return (
            f"cfg{self.config_id}/s{self.scenario}/vc{self.vc_depth}"
            f"/wcpf{self.wireless_cycles_per_flit}"
        )


@dataclass
class EvaluatedPoint:
    """A design point plus its measured merit figures."""

    point: DesignPoint
    latency: float
    throughput: float
    power_w: float
    energy_per_packet_nj: float

    def dominates(self, other: "EvaluatedPoint") -> bool:
        """Pareto dominance on (latency low, power low, throughput high)."""
        no_worse = (
            self.latency <= other.latency
            and self.power_w <= other.power_w
            and self.throughput >= other.throughput
        )
        strictly_better = (
            self.latency < other.latency
            or self.power_w < other.power_w
            or self.throughput > other.throughput
        )
        return no_worse and strictly_better


def default_space() -> List[DesignPoint]:
    """The paper's 4x2 grid: every Table IV configuration under both
    Table III scenarios (with the scenario's matching serialization)."""
    points = []
    for config_id, scenario in itertools.product((1, 2, 3, 4), (1, 2)):
        points.append(
            DesignPoint(
                config_id=config_id,
                scenario=scenario,
                wireless_cycles_per_flit=1 if scenario == 1 else 2,
            )
        )
    return points


def _shape_spec(
    point: DesignPoint,
    rate: float,
    cycles: int,
    warmup: int,
    seed: int,
    power: Tuple[Tuple[int, int], ...],
) -> RunSpec:
    """The engine spec for one *network shape* (vc depth, serialization).

    Power configurations re-score the same simulation, so every design
    point sharing a shape maps onto one spec whose ``power`` tuple covers
    all its (config, scenario) pairs -- the paper's 4x2 grid costs two
    simulations, not eight, and the result cache sees shape-level digests.
    """
    return RunSpec.create(
        "own256",
        pattern="UN",
        rate=rate,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        topology_kwargs={
            "vc_depth": point.vc_depth,
            "wireless_cycles_per_flit": point.wireless_cycles_per_flit,
        },
        power=power,
    )


def _evaluated_from_run(point: DesignPoint, run: RunResult) -> EvaluatedPoint:
    breakdown = run.power_for(point.config_id, point.scenario)
    return EvaluatedPoint(
        point=point,
        latency=run.summary["latency_mean"],
        throughput=run.summary["throughput"],
        power_w=breakdown["total_w"],
        energy_per_packet_nj=breakdown["energy_per_packet_nj"],
    )


def evaluate_point(
    point: DesignPoint,
    rate: float = 0.03,
    cycles: int = 1000,
    warmup: int = 300,
    seed: int = 6,
    executor: Optional[Executor] = None,
) -> EvaluatedPoint:
    """Simulate one design point and measure its merit figures."""
    if point.scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {point.scenario}")
    spec = _shape_spec(
        point, rate, cycles, warmup, seed, ((point.config_id, point.scenario),)
    )
    return _evaluated_from_run(point, get_executor(executor).run_one(spec))


def pareto_frontier(evaluated: Sequence[EvaluatedPoint]) -> List[EvaluatedPoint]:
    """Non-dominated subset, sorted by power."""
    frontier = [
        e
        for e in evaluated
        if not any(other.dominates(e) for other in evaluated if other is not e)
    ]
    return sorted(frontier, key=lambda e: e.power_w)


@dataclass
class ExplorationResult:
    """Full sweep output."""

    evaluated: List[EvaluatedPoint] = field(default_factory=list)
    frontier: List[EvaluatedPoint] = field(default_factory=list)

    def best_by(self, metric: str) -> EvaluatedPoint:
        # Ties on the primary metric (e.g. latency, which only depends on
        # the network shape) break towards lower power.
        key = {
            "power": lambda e: (e.power_w, e.latency),
            "latency": lambda e: (e.latency, e.power_w),
            "energy_per_packet": lambda e: (e.energy_per_packet_nj, e.latency),
        }.get(metric)
        if key is None:
            raise ValueError(f"unknown metric {metric!r}")
        return min(self.evaluated, key=key)

    def rows(self) -> List[List[object]]:
        out = []
        frontier_ids = {id(e) for e in self.frontier}
        for e in sorted(self.evaluated, key=lambda e: e.power_w):
            out.append(
                [
                    e.point.label(),
                    round(e.latency, 1),
                    round(e.throughput, 4),
                    round(e.power_w, 3),
                    round(e.energy_per_packet_nj, 3),
                    "*" if id(e) in frontier_ids else "",
                ]
            )
        return out


def explore(
    points: Optional[Iterable[DesignPoint]] = None,
    rate: float = 0.03,
    cycles: int = 1000,
    warmup: int = 300,
    seed: int = 6,
    executor: Optional[Executor] = None,
) -> ExplorationResult:
    """Evaluate a design space and extract its Pareto frontier.

    Design points are grouped per unique *network shape* (vc_depth,
    serialization) and each shape becomes one engine
    :class:`~repro.runtime.spec.RunSpec` carrying every (config, scenario)
    pair that shape must score: the paper's 4x2 grid costs two
    simulations, not eight. Shapes run through the supplied executor, so
    a wide exploration parallelises across worker processes and re-runs
    hit the result cache.
    """
    pts = list(points) if points is not None else default_space()
    by_shape: Dict[Tuple[int, int], List[DesignPoint]] = {}
    for point in pts:
        if point.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {point.scenario}")
        shape = (point.vc_depth, point.wireless_cycles_per_flit)
        by_shape.setdefault(shape, []).append(point)

    shapes = list(by_shape)
    specs = []
    for shape in shapes:
        members = by_shape[shape]
        power = tuple(dict.fromkeys((p.config_id, p.scenario) for p in members))
        specs.append(_shape_spec(members[0], rate, cycles, warmup, seed, power))
    runs = dict(zip(shapes, get_executor(executor).run(specs)))

    evaluated = [
        _evaluated_from_run(
            point, runs[(point.vc_depth, point.wireless_cycles_per_flit)]
        )
        for point in pts
    ]
    return ExplorationResult(evaluated=evaluated, frontier=pareto_frontier(evaluated))
