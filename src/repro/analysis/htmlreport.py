"""Self-contained HTML diagnosis reports: inline SVG, zero JavaScript.

Renders a :class:`~repro.analysis.diagnose.SweepDiagnosis` into a single
HTML file that opens anywhere (CI artifact viewers, ``file://``) with no
external assets:

- **latency decomposition** -- one horizontal stacked bar per load point,
  segments coloured by breakdown stage in a fixed categorical order with
  2px surface gaps, plus a legend and the exact numeric table (the bars
  are the picture; the table is the record);
- **congestion heatmaps** -- components x time-windows matrices on a
  single-hue sequential blue ramp (light = idle, dark = saturated), row
  capped to the busiest components for legibility (the JSON export keeps
  the full matrix); every cell carries an SVG ``<title>`` so hovering
  reveals the exact value without any scripting;
- **verdict banner and knee callout** -- the dominant-bottleneck verdict
  per point and where the sweep saturated;
- **self-profile table** -- simulated cycles/sec per phase per point.

Colour use follows one rule per job: categorical hues identify stages
(fixed assignment, never cycled), the sequential ramp encodes magnitude
only, and all text wears text colours -- never a series colour.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

from repro.analysis.congestion import Heatmap
from repro.analysis.diagnose import PointDiagnosis, SweepDiagnosis
from repro.telemetry.tracer import BREAKDOWN_STAGES

# --------------------------------------------------------------------- #
# Palette (validated categorical order + single-hue sequential ramp)
# --------------------------------------------------------------------- #

#: Fixed stage -> colour assignment (categorical slots, never cycled).
STAGE_COLORS: Dict[str, str] = {
    "queueing": "#2a78d6",       # blue
    "token_wait": "#eb6834",     # orange
    "serialization": "#1baf7a",  # aqua
    "flight": "#eda100",         # yellow
    "retx": "#e87ba4",           # magenta
    "other": "#008300",          # green
}

STAGE_LABELS: Dict[str, str] = {
    "queueing": "injection queueing",
    "token_wait": "token wait",
    "serialization": "serialization",
    "flight": "flight",
    "retx": "retransmission",
    "other": "switch/other",
}

#: Sequential blue ramp stops, light -> dark (magnitude only).
_RAMP = ("#cde2fb", "#74a9e8", "#2a78d6", "#1b4f93", "#0d366b")

_SURFACE = "#fcfcfb"
_INK = "#0b0b0b"
_MUTED = "#52514e"
_GRID = "#e4e3df"

#: Max heatmap rows rendered in HTML (full matrix lives in the JSON).
HEATMAP_MAX_ROWS = 32


def _hex_to_rgb(h: str):
    return tuple(int(h[i:i + 2], 16) for i in (1, 3, 5))


def ramp_color(frac: float) -> str:
    """Piecewise-linear interpolation along the sequential ramp."""
    frac = min(1.0, max(0.0, frac))
    pos = frac * (len(_RAMP) - 1)
    i = min(int(pos), len(_RAMP) - 2)
    t = pos - i
    lo, hi = _hex_to_rgb(_RAMP[i]), _hex_to_rgb(_RAMP[i + 1])
    rgb = tuple(round(a + (b - a) * t) for a, b in zip(lo, hi))
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


# --------------------------------------------------------------------- #
# SVG building blocks
# --------------------------------------------------------------------- #

def stacked_bars_svg(points: Sequence[PointDiagnosis], width: int = 720) -> str:
    """Horizontal stacked latency-decomposition bars, one per load point."""
    attributed = [p for p in points if p.attribution is not None]
    if not attributed:
        return "<p>No packet breakdown available.</p>"
    bar_h, gap, left, right = 22, 14, 110, 70
    vmax = max(p.attribution.overall.total_mean for p in attributed)
    plot_w = width - left - right
    height = len(attributed) * (bar_h + gap) + 8
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}"'
        f' role="img" aria-label="Latency decomposition by stage">'
    ]
    for i, p in enumerate(attributed):
        y = 4 + i * (bar_h + gap)
        ov = p.attribution.overall
        parts.append(
            f'<text x="{left - 8}" y="{y + bar_h - 6}" text-anchor="end"'
            f' font-size="12" fill="{_INK}">rate {p.rate:g}</text>'
        )
        x = float(left)
        for stage in BREAKDOWN_STAGES:
            cycles = ov.stages.get(stage, 0.0)
            w = cycles / vmax * plot_w if vmax else 0.0
            if w <= 0:
                continue
            # 2px surface gap between segments (drawn as per-segment inset).
            tip = (
                f"{STAGE_LABELS[stage]}: {cycles:.2f} cycles "
                f"({ov.share(stage):.1%}) at rate {p.rate:g}"
            )
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(0.5, w - 2):.1f}"'
                f' height="{bar_h}" fill="{STAGE_COLORS[stage]}">'
                f"<title>{_esc(tip)}</title></rect>"
            )
            x += w
        parts.append(
            f'<text x="{x + 6:.1f}" y="{y + bar_h - 6}" font-size="12"'
            f' fill="{_MUTED}">{ov.total_mean:.1f} cyc</text>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="key"><span class="swatch" style="background:'
        f'{STAGE_COLORS[s]}"></span>{_esc(STAGE_LABELS[s])}</span>'
        for s in BREAKDOWN_STAGES
    )
    return f'<div class="legend">{legend}</div>' + "".join(parts)


def heatmap_svg(hm: Heatmap, width: int = 720) -> str:
    """One congestion heatmap as an SVG cell matrix with hover titles."""
    shown = hm.top_rows(HEATMAP_MAX_ROWS)
    if not shown.rows or shown.n_windows == 0:
        return "<p>No data.</p>"
    vmax = hm.vmax or 1.0  # scale from the FULL matrix, not the shown rows
    left, top, cell_h = 120, 18, 14
    n_win = shown.n_windows
    cell_w = max(3.0, min(24.0, (width - left - 8) / n_win))
    height = top + len(shown.rows) * cell_h + 22
    w_total = left + n_win * cell_w + 8
    parts = [
        f'<svg viewBox="0 0 {w_total:.0f} {height}" width="{w_total:.0f}"'
        f' height="{height}" role="img" aria-label="{_esc(shown.title)}">'
    ]
    for r, name in enumerate(shown.components):
        y = top + r * cell_h
        parts.append(
            f'<text x="{left - 6}" y="{y + cell_h - 3}" text-anchor="end"'
            f' font-size="10" fill="{_INK}">{_esc(name)}</text>'
        )
        for w, value in enumerate(shown.rows[r]):
            if value <= 0:
                continue  # surface shows through = idle
            x = left + w * cell_w
            tip = (
                f"{name} @ cycles {w * hm.window_cycles}-"
                f"{(w + 1) * hm.window_cycles - 1}: {value:.3g} {hm.unit}"
            )
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(0.5, cell_w - 1):.1f}"'
                f' height="{cell_h - 1}" fill="{ramp_color(value / vmax)}">'
                f"<title>{_esc(tip)}</title></rect>"
            )
    axis_y = top + len(shown.rows) * cell_h + 14
    parts.append(
        f'<text x="{left}" y="{axis_y}" font-size="10" fill="{_MUTED}">'
        f"cycle 0</text>"
        f'<text x="{left + n_win * cell_w:.1f}" y="{axis_y}" font-size="10"'
        f' text-anchor="end" fill="{_MUTED}">cycle {n_win * hm.window_cycles}'
        f"</text>"
    )
    parts.append("</svg>")
    scale = "".join(
        f'<span class="swatch" style="background:{ramp_color(f / 4)}"></span>'
        for f in range(5)
    )
    caption = (
        f'<div class="legend"><span class="key">{_esc(shown.title)} '
        f"&mdash; {_esc(hm.unit)}, window {hm.window_cycles} cycles</span>"
        f'<span class="key">0 {scale} {hm.vmax:.3g}</span></div>'
    )
    return caption + "".join(parts)


# --------------------------------------------------------------------- #
# Tables + page assembly
# --------------------------------------------------------------------- #

def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _breakdown_table(points: Sequence[PointDiagnosis]) -> str:
    rows = []
    for p in points:
        if p.attribution is None:
            continue
        ov = p.attribution.overall
        rows.append(
            [f"{p.rate:g}", f"{ov.total_mean:.2f}"]
            + [f"{ov.stages.get(s, 0.0):.2f}" for s in BREAKDOWN_STAGES]
            + ["yes" if ov.exact else "no", p.verdict]
        )
    headers = (
        ["offered rate", "latency (cyc)"]
        + [STAGE_LABELS[s] for s in BREAKDOWN_STAGES]
        + ["exact sum", "verdict"]
    )
    return _table(headers, rows)


def _profile_table(points: Sequence[PointDiagnosis]) -> str:
    rows = []
    for p in points:
        prof = p.profile or {}
        rows.append([
            f"{p.rate:g}",
            prof.get("sim_cycles", "-"),
            prof.get("build_s", "-"),
            prof.get("sim_s", "-"),
            prof.get("measure_s", "-"),
            prof.get("sim_cycles_per_sec", "-"),
        ])
    return _table(
        ["offered rate", "cycles", "build s", "simulate s", "measure s",
         "cycles/sec"],
        rows,
    )


def _occupancy_table(points: Sequence[PointDiagnosis]) -> str:
    classes: List[str] = sorted({
        c for p in points if p.attribution
        for c in p.attribution.wireless_occupancy
    })
    if not classes:
        return ""
    rows = [
        [f"{p.rate:g}"] + [
            f"{p.attribution.wireless_occupancy.get(c, 0.0):.3f}"
            for c in classes
        ]
        for p in points if p.attribution
    ]
    return (
        "<h2>Wireless channel occupancy</h2>"
        + _table(["offered rate"] + [f"{c} busy frac" for c in classes], rows)
    )


_CSS = f"""
body {{ background: {_SURFACE}; color: {_INK}; margin: 2em auto;
       max-width: 840px; font: 14px/1.5 system-ui, sans-serif; }}
h1, h2 {{ font-weight: 600; }}
h2 {{ margin-top: 1.8em; border-bottom: 1px solid {_GRID};
      padding-bottom: 4px; }}
table {{ border-collapse: collapse; margin: 0.8em 0; font-size: 13px;
         font-variant-numeric: tabular-nums; }}
th, td {{ padding: 3px 10px; text-align: right; }}
th {{ color: {_MUTED}; font-weight: 500;
      border-bottom: 1px solid {_GRID}; }}
td:first-child, th:first-child {{ text-align: left; }}
.legend {{ margin: 0.6em 0; color: {_MUTED}; font-size: 12px; }}
.key {{ margin-right: 1.2em; white-space: nowrap; }}
.swatch {{ display: inline-block; width: 11px; height: 11px;
           border-radius: 2px; margin-right: 4px;
           vertical-align: -1px; }}
.banner {{ background: #f1efec; border-radius: 6px; padding: 10px 14px;
           margin: 1em 0; }}
.muted {{ color: {_MUTED}; }}
"""


def render_sweep_report(diag: SweepDiagnosis, title: str = "") -> str:
    """The full self-contained HTML page for one diagnosed sweep."""
    title = title or f"Diagnosis: {diag.topology} / {diag.pattern}"
    flip = diag.verdict_flip()
    if flip:
        banner = (
            f"Saturation knee at offered rate <b>{flip['at']:g}</b>: "
            f"dominant bottleneck flips from <b>{_esc(flip['before'])}</b> "
            f"to <b>{_esc(flip['after'])}</b>."
        )
    elif diag.knee is not None:
        banner = (
            f"Saturation knee at offered rate <b>{diag.knee:g}</b>; "
            "dominant bottleneck verdict unchanged across it."
        )
    else:
        banner = "Sweep never saturated within the measured load range."
    sections = [
        f"<h1>{_esc(title)}</h1>",
        f'<div class="banner">{banner}</div>',
        "<h2>Latency decomposition by stage</h2>",
        stacked_bars_svg(diag.points),
        _breakdown_table(diag.points),
        _occupancy_table(diag.points),
    ]
    heat_sections = []
    for p in diag.points:
        for hm in p.heatmaps:
            heat_sections.append(
                f'<h3 class="muted">rate {p.rate:g}</h3>' + heatmap_svg(hm)
            )
    if heat_sections:
        sections.append("<h2>Congestion heatmaps</h2>")
        sections.extend(heat_sections)
    sections.append("<h2>Simulator self-profile</h2>")
    sections.append(_profile_table(diag.points))
    body = "\n".join(s for s in sections if s)
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        f"<meta charset=\"utf-8\"><title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n{body}\n</body></html>\n"
    )
