"""ASCII table / CSV rendering for bench output.

Benchmarks print the same rows the paper's tables and figure captions carry;
this module keeps the formatting in one place so every bench reads alike.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width ASCII table.

    Floats use ``float_fmt``; everything else is ``str()``-ed. Column widths
    auto-size to content.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append(
            [float_fmt.format(v) if isinstance(v, float) else str(v) for v in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    sep = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(sep + "\n")
    for row in str_rows:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as simple CSV (no quoting needs in our data)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(v) for v in row))
    return "\n".join(lines) + "\n"


def ratio_note(value: float, reference: float, label: str) -> str:
    """'x1.23 of <label>' annotation used in bench summaries."""
    if reference == 0:
        return f"(reference {label} is zero)"
    return f"x{value / reference:.2f} of {label}"
