"""Congestion heatmaps: time-windowed occupancy matrices of the fabric.

Turns a :class:`repro.telemetry.WindowedAggregator` (a streaming sink fed
by the tracer during a run) into :class:`Heatmap` value objects -- one per
aggregation kind -- with the normalisation each kind needs:

``link_busy``    busy fraction in [0, 1] per medium per window (the
                 occupancy picture of every waveguide and wireless
                 channel over time)
``token_wait``   mean token-wait cycles charged per window per shared
                 medium (where MWSR arbitration hurts, and when)
``vc_stall``     stalled-VC observations per router per window
``buffer_occ``   mean buffered flits per router per window (needs
                 ``Tracer(sample_every=N)``)

Heatmaps are plain data (components x windows) ready for JSON export and
the SVG renderer in :mod:`repro.analysis.htmlreport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.windows import WindowedAggregator

#: Per-kind presentation metadata: (title, unit, use per-window mean,
#: normalise by window width).
_KIND_META = {
    "link_busy": ("Link occupancy", "busy fraction", False, True),
    "token_wait": ("Token wait", "wait cycles / event", True, False),
    "vc_stall": ("VC stalls", "stalls / window", False, False),
    "buffer_occ": ("Buffer occupancy", "mean buffered flits", True, False),
}


@dataclass
class Heatmap:
    """One components-by-windows matrix with presentation metadata."""

    kind: str
    title: str
    unit: str
    window_cycles: int
    components: List[str]
    #: ``rows[i][w]`` = value of ``components[i]`` in window ``w``.
    rows: List[List[float]] = field(default_factory=list)

    @property
    def n_windows(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    @property
    def vmax(self) -> float:
        """Largest cell value (colour-scale upper bound; 0.0 if empty)."""
        return max((v for row in self.rows for v in row), default=0.0)

    def row_totals(self) -> List[float]:
        return [sum(row) for row in self.rows]

    def top_rows(self, n: int) -> "Heatmap":
        """Copy keeping only the ``n`` busiest components (by row total).

        Used by the HTML renderer so a 256-router matrix stays legible;
        the JSON export always carries the full matrix.
        """
        if n >= len(self.components):
            return self
        order = sorted(
            range(len(self.components)),
            key=lambda i: sum(self.rows[i]),
            reverse=True,
        )[:n]
        order.sort()  # keep original component order among the survivors
        return Heatmap(
            kind=self.kind,
            title=f"{self.title} (top {n} of {len(self.components)})",
            unit=self.unit,
            window_cycles=self.window_cycles,
            components=[self.components[i] for i in order],
            rows=[self.rows[i] for i in order],
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "title": self.title,
            "unit": self.unit,
            "window_cycles": self.window_cycles,
            "components": list(self.components),
            "rows": [list(r) for r in self.rows],
            "vmax": self.vmax,
        }

    @classmethod
    def from_json_dict(cls, d: Dict[str, object]) -> "Heatmap":
        return cls(
            kind=str(d["kind"]),
            title=str(d["title"]),
            unit=str(d["unit"]),
            window_cycles=int(d["window_cycles"]),
            components=[str(c) for c in d["components"]],
            rows=[[float(v) for v in row] for row in d["rows"]],
        )


def heatmaps_from_aggregator(
    agg: WindowedAggregator, kinds: Optional[List[str]] = None
) -> List[Heatmap]:
    """Build one :class:`Heatmap` per aggregation kind with data.

    ``link_busy`` sums are divided by the window width so cells read as
    busy fractions; ``token_wait`` and ``buffer_occ`` use per-window
    means; ``vc_stall`` stays a raw count.
    """
    out: List[Heatmap] = []
    for kind in agg.kinds():
        if kinds is not None and kind not in kinds:
            continue
        title, unit, use_mean, per_cycle = _KIND_META.get(
            kind, (kind, "value", False, False)
        )
        components, rows = agg.matrix(kind, mean=use_mean)
        if per_cycle:
            width = float(agg.window_cycles)
            rows = [[min(1.0, v / width) for v in row] for row in rows]
        out.append(
            Heatmap(
                kind=kind,
                title=title,
                unit=unit,
                window_cycles=agg.window_cycles,
                components=components,
                rows=rows,
            )
        )
    return out
