"""Run instrumented simulations and diagnose where the cycles go.

This is the orchestration layer of ``repro.analysis``'s observability
stack: it executes runs in-process with a metrics-only tracer plus a
streaming :class:`~repro.telemetry.WindowedAggregator` sink, then folds
the outputs through :mod:`~repro.analysis.attribution` (latency
decomposition + bottleneck verdict) and
:mod:`~repro.analysis.congestion` (occupancy heatmaps).

Two entry points:

:func:`diagnose_point`
    One (topology, pattern, rate) point -> :class:`PointDiagnosis` with
    summary stats, stage attribution, heatmaps and the simulator's
    self-profile.

:func:`diagnose_sweep`
    A load sweep -> :class:`SweepDiagnosis` with per-point verdicts, the
    saturation knee, and the verdict flip across it (on OWN-256
    uniform-random: token-wait below the knee, wireless-occupancy above).

Instrumented runs use :func:`repro.runtime.executor.execute_inline`
directly (no cache): the aggregator holds live per-window state that is
not cacheable payload. The simulation results themselves are unchanged
by tracing -- the tracer is observation-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.attribution import Attribution, attribute_metrics, detect_knee
from repro.analysis.congestion import Heatmap, heatmaps_from_aggregator
from repro.runtime.executor import execute_inline
from repro.runtime.spec import RunSpec
from repro.telemetry import Tracer, WindowedAggregator


@dataclass
class PointDiagnosis:
    """Everything measured about one instrumented run."""

    label: str
    topology: str
    pattern: str
    rate: float
    summary: Dict[str, float]
    attribution: Optional[Attribution]
    heatmaps: List[Heatmap] = field(default_factory=list)
    profile: Dict[str, object] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.summary.get("latency_mean", float("nan"))

    @property
    def throughput(self) -> float:
        return self.summary.get("throughput", 0.0)

    @property
    def verdict(self) -> str:
        return self.attribution.verdict if self.attribution else "no-data"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "topology": self.topology,
            "pattern": self.pattern,
            "rate": self.rate,
            "summary": self.summary,
            "attribution": (
                self.attribution.to_json_dict() if self.attribution else None
            ),
            "heatmaps": [h.to_json_dict() for h in self.heatmaps],
            "profile": self.profile,
        }


@dataclass
class SweepDiagnosis:
    """A diagnosed load sweep: per-point verdicts plus the knee."""

    topology: str
    pattern: str
    points: List[PointDiagnosis]
    #: First offered load past the saturation knee (``None``: never
    #: saturated within the sweep).
    knee: Optional[float]

    def verdicts(self) -> List[str]:
        return [p.verdict for p in self.points]

    def verdict_flip(self) -> Optional[Dict[str, object]]:
        """The pre/post-knee verdict change, if the sweep crossed one.

        Returns ``{"at": knee_load, "before": v, "after": v}`` or ``None``
        when the sweep never saturated or the verdict never changed.
        """
        if self.knee is None:
            return None
        before = [p.verdict for p in self.points if p.rate < self.knee]
        after = [p.verdict for p in self.points if p.rate >= self.knee]
        if not before or not after or before[-1] == after[0]:
            return None
        return {"at": self.knee, "before": before[-1], "after": after[0]}

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "pattern": self.pattern,
            "knee": self.knee,
            "verdict_flip": self.verdict_flip(),
            "points": [p.to_json_dict() for p in self.points],
        }


def diagnosis_spec(
    topology: str,
    pattern: str = "UN",
    rate: float = 0.01,
    cycles: int = 800,
    warmup: int = 200,
    seed: int = 3,
    topology_kwargs: Optional[Dict[str, object]] = None,
) -> RunSpec:
    """The :class:`RunSpec` for one diagnosis point (telemetry on)."""
    return RunSpec.create(
        topology,
        pattern=pattern,
        rate=rate,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        topology_kwargs=topology_kwargs,
        telemetry=True,
    )


def diagnose_point(
    spec: RunSpec,
    window_cycles: int = 64,
    sample_every: int = 16,
    heatmaps: bool = True,
) -> PointDiagnosis:
    """Execute ``spec`` with full instrumentation and diagnose it.

    The tracer runs metrics-only (no event buffering): the windowed
    aggregator consumes the stream as it is produced, so memory stays at
    ``components x windows`` regardless of run length.
    """
    agg = WindowedAggregator(window_cycles=window_cycles)
    tracer = Tracer(
        record_events=False,
        sample_every=sample_every,
        sinks=[agg] if heatmaps else None,
    )
    _, _, result = execute_inline(spec, tracer=tracer)
    return PointDiagnosis(
        label=spec.label(),
        topology=spec.topology,
        pattern=spec.traffic.pattern,
        rate=spec.traffic.rate,
        summary=dict(result.summary),
        attribution=attribute_metrics(result.metrics),
        heatmaps=heatmaps_from_aggregator(agg) if heatmaps else [],
        profile=dict(result.profile),
    )


def diagnose_sweep(
    topology: str,
    pattern: str = "UN",
    rates: Sequence[float] = (0.01, 0.03, 0.05, 0.07),
    cycles: int = 800,
    warmup: int = 200,
    seed: int = 3,
    topology_kwargs: Optional[Dict[str, object]] = None,
    window_cycles: int = 64,
    sample_every: int = 16,
    heatmap_points: int = 2,
) -> SweepDiagnosis:
    """Diagnose a full load sweep and locate its saturation knee.

    Every point gets attribution; heatmaps are kept only for the
    ``heatmap_points`` highest loads (the interesting, congested end)
    to bound report size -- pass ``heatmap_points=len(rates)`` to keep
    them all.
    """
    rates = sorted(rates)
    keep_heat = set(rates[-heatmap_points:]) if heatmap_points > 0 else set()
    points = [
        diagnose_point(
            diagnosis_spec(
                topology,
                pattern=pattern,
                rate=rate,
                cycles=cycles,
                warmup=warmup,
                seed=seed,
                topology_kwargs=topology_kwargs,
            ),
            window_cycles=window_cycles,
            sample_every=sample_every,
            heatmaps=rate in keep_heat,
        )
        for rate in rates
    ]
    knee = detect_knee(
        [p.rate for p in points],
        [p.latency for p in points],
        accepted=[p.throughput for p in points],
    )
    return SweepDiagnosis(
        topology=topology, pattern=pattern, points=points, knee=knee
    )
