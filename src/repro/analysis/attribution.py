"""Bottleneck attribution: where did each packet's latency actually go?

Consumes the flat telemetry metrics of one run (``RunResult.metrics`` or
the ``"metrics"`` object of a JSONL run record) and decomposes mean
end-to-end latency into the tracer's breakdown stages, per channel class
and overall. Because the per-packet breakdown is exact (the tracer's
``other`` stage absorbs the remainder), the stage *totals* sum to the
end-to-end total exactly -- :class:`StageBreakdown` carries that check.

On top of the decomposition sits a **dominant-bottleneck verdict** per
(topology, load) point, with rules calibrated on measured OWN-256
uniform-random sweeps:

* pre-saturation the largest contention term is **token wait** at the
  shared media (home-waveguide MWSR tokens, the paper's Sec. III-A cost);
* past the saturation knee the wireless channels run at high occupancy
  and latency moves into in-network blocking + source queueing, so the
  verdict flips to **wireless occupancy** -- the C2C/E2E/SR capacity
  trade the paper's Fig. 7/8 evaluation turns on.

:func:`detect_knee` finds that saturation knee in a load sweep using the
same latency-factor + acceptance rule as
:meth:`repro.analysis.sweep.SweepResult.saturation_offered`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.telemetry.tracer import BREAKDOWN_STAGES

#: Stages whose latency is *attributable* contention: a specific shared
#: resource was measured making the packet wait. ``serialization`` and
#: ``flight`` are structural path costs; ``other`` mixes the fixed router
#: pipeline with switch blocking and so is never a verdict on its own
#: unless nothing attributable registers.
CONTENTION_STAGES = ("queueing", "token_wait", "retx")

#: Minimum share of mean latency an attributable contention stage needs
#: to be named the bottleneck (below it the run is essentially
#: contention-free).
ATTRIBUTABLE_MIN = 0.10

#: Wireless occupancy (busy fraction of a distance class's channels) at or
#: above which the class is considered saturated. Calibrated on OWN-256
#: uniform-random sweeps: pre-knee loads measure <= ~0.5, post-knee
#: loads measure >= ~0.65.
OCCUPANCY_SATURATED = 0.6

#: Verdict labels for the dominant contention stage.
_STAGE_VERDICT = {
    "queueing": "injection-queueing",
    "token_wait": "token-wait",
    "retx": "retransmission",
}


@dataclass
class StageBreakdown:
    """Mean latency decomposition for one channel class (or overall)."""

    cls: str
    count: int
    total_mean: float
    #: stage -> mean cycles contributed (sums to ``total_mean``).
    stages: Dict[str, float] = field(default_factory=dict)
    #: Do the integer stage totals sum exactly to the end-to-end total?
    exact: bool = True

    def share(self, stage: str) -> float:
        """Fraction of mean end-to-end latency spent in ``stage``."""
        if not self.total_mean:
            return 0.0
        return self.stages.get(stage, 0.0) / self.total_mean

    def shares(self) -> Dict[str, float]:
        return {s: self.share(s) for s in BREAKDOWN_STAGES}

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "class": self.cls,
            "count": self.count,
            "total_mean": self.total_mean,
            "stages": dict(self.stages),
            "shares": self.shares(),
            "exact": self.exact,
        }


@dataclass
class Attribution:
    """Full bottleneck attribution of one run's telemetry metrics."""

    overall: StageBreakdown
    per_class: Dict[str, StageBreakdown]
    #: distance class -> busy fraction of its wireless channels.
    wireless_occupancy: Dict[str, float]
    verdict: str
    #: Share of mean latency (or occupancy) backing the verdict.
    verdict_share: float

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "verdict_share": self.verdict_share,
            "wireless_occupancy": dict(self.wireless_occupancy),
            "overall": self.overall.to_json_dict(),
            "per_class": {
                c: b.to_json_dict() for c, b in sorted(self.per_class.items())
            },
        }


def _hist_stat(metrics: Mapping[str, object], name: str, cls: str, stat: str):
    return metrics.get(f"{name}[{cls}].{stat}")


def _class_breakdown(metrics: Mapping[str, object], cls: str) -> Optional[StageBreakdown]:
    count = _hist_stat(metrics, "pkt_total", cls, "count")
    if not count:
        return None
    total = _hist_stat(metrics, "pkt_total", cls, "total")
    if total is None:
        # Pre-v2 records expose only the mean; reconstruct a total (the
        # exactness check is then best-effort).
        total = (_hist_stat(metrics, "pkt_total", cls, "mean") or 0.0) * count
    stages: Dict[str, float] = {}
    stage_sum = 0.0
    for stage in BREAKDOWN_STAGES:
        st = _hist_stat(metrics, f"pkt_{stage}", cls, "total")
        if st is None:
            st = (_hist_stat(metrics, f"pkt_{stage}", cls, "mean") or 0.0) * count
        stages[stage] = st / count
        stage_sum += st
    return StageBreakdown(
        cls=cls,
        count=int(count),
        total_mean=total / count,
        stages=stages,
        exact=stage_sum == total,
    )


def packet_classes(metrics: Mapping[str, object]) -> List[str]:
    """Channel classes with at least one measured packet."""
    out = []
    for key in metrics:
        if key.startswith("pkt_total[") and key.endswith("].count"):
            if metrics[key]:
                out.append(key[len("pkt_total["):-len("].count")])
    return sorted(out)


def wireless_occupancies(metrics: Mapping[str, object]) -> Dict[str, float]:
    """Per-distance-class wireless busy fractions from the gauge metrics."""
    prefix = "wireless_occupancy["
    out = {}
    for key, value in metrics.items():
        if key.startswith(prefix) and key.endswith("]") and value is not None:
            out[key[len(prefix):-1]] = float(value)
    return out


def attribute_metrics(metrics: Mapping[str, object]) -> Optional[Attribution]:
    """Bottleneck attribution for one run's flat metrics dict.

    Returns ``None`` when the metrics carry no packet breakdown (run
    without telemetry, or zero measured packets).
    """
    per_class: Dict[str, StageBreakdown] = {}
    for cls in packet_classes(metrics):
        bd = _class_breakdown(metrics, cls)
        if bd is not None:
            per_class[cls] = bd
    if not per_class:
        return None

    # Count-weighted overall decomposition (exact: totals add across
    # classes because every measured packet lands in exactly one class).
    count = sum(b.count for b in per_class.values())
    total = sum(b.total_mean * b.count for b in per_class.values())
    stages = {
        s: sum(b.stages[s] * b.count for b in per_class.values()) / count
        for s in BREAKDOWN_STAGES
    }
    overall = StageBreakdown(
        cls="all",
        count=count,
        total_mean=total / count,
        stages=stages,
        exact=all(b.exact for b in per_class.values()),
    )

    occupancy = wireless_occupancies(metrics)
    verdict, share = _verdict(overall, occupancy)
    return Attribution(
        overall=overall,
        per_class=per_class,
        wireless_occupancy=occupancy,
        verdict=verdict,
        verdict_share=share,
    )


def _verdict(overall: StageBreakdown, occupancy: Mapping[str, float]):
    """Dominant-bottleneck rule (see module docstring for calibration).

    A saturated wireless plan (any distance class at or above
    :data:`OCCUPANCY_SATURATED` busy fraction) whose congestion latency
    (in-network blocking + source queueing) outweighs token wait reads as
    *wireless-occupancy*. Otherwise the largest *attributable* contention
    stage wins (``other`` is excluded: it mixes the fixed router pipeline
    with blocking, so at low load it is structural baseline, not
    contention). With no attributable stage above
    :data:`ATTRIBUTABLE_MIN`, heavy ``other`` reads as
    *switch-contention* and anything else as *structural* (the packet
    mostly paid serialization/flight/pipeline).
    """
    max_occ = max(occupancy.values(), default=0.0)
    congestion = overall.share("other") + overall.share("queueing")
    if max_occ >= OCCUPANCY_SATURATED and congestion > overall.share("token_wait"):
        return "wireless-occupancy", max_occ
    dominant = max(CONTENTION_STAGES, key=overall.share)
    share = overall.share(dominant)
    if share >= ATTRIBUTABLE_MIN:
        return _STAGE_VERDICT[dominant], share
    if overall.share("other") > 0.4:
        return "switch-contention", overall.share("other")
    return "structural", overall.share("serialization") + overall.share("flight")


def detect_knee(
    loads: Sequence[float],
    latencies: Sequence[float],
    accepted: Optional[Sequence[float]] = None,
    latency_factor: float = 3.0,
    accept_threshold: float = 0.88,
) -> Optional[float]:
    """First offered load past the saturation knee (``None`` if none).

    A point is post-knee when its latency reaches ``latency_factor`` times
    the zero-load latency *or* its accepted fraction (``accepted[i] /
    loads[i]``) falls below ``accept_threshold`` -- the same rule
    :meth:`~repro.analysis.sweep.SweepResult.saturation_offered` applies
    from the other side.
    """
    if not loads:
        return None
    zero = latencies[0]
    for i, (load, latency) in enumerate(zip(loads, latencies)):
        if latency >= latency_factor * zero:
            return load
        if accepted is not None and load > 0:
            if accepted[i] / load < accept_threshold:
                return load
    return None
