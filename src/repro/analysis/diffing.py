"""Run-record diffing: did this change move the numbers, and by how much?

Compares two JSONL run logs (see :mod:`repro.runtime.records`) point by
point for CI gating and before/after studies:

- **Matching** -- records are grouped by *spec key* ``(topology, pattern,
  rate, cycles, warmup)``. The content digest cannot be the join key
  across commits (it folds in the code fingerprint, so it changes on
  every source edit by design); instead, digest equality per matched key
  is *reported* -- when digests agree the runs were bit-identical inputs
  and any metric delta is pure measurement noise.
- **Noise bands** -- repeated records under one key (repeated-seed or
  repeated-run entries in the same log) define a per-metric spread
  (max - min). A delta within the wider of the two logs' spreads is
  reported but never significant.
- **Gating** -- a delta is a *breach* when it exceeds the noise band
  AND the relative threshold (default 5%) on a gated metric.
  :func:`LogDiff.breaches` drives ``repro diff``'s exit status: two logs
  of identical-seed runs diff clean and exit 0; a real regression exits
  non-zero for CI.

Compared metrics: mean/p99 latency, accepted throughput, and per-config
power totals when both records carry them (v1 records without ``power``
simply skip that row). The simulator's self-profile (wall-clock speed) is
machine-dependent and intentionally **never** gated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.records import read_runlog

#: Spec fields forming the cross-log join key.
KEY_FIELDS = ("topology", "pattern", "rate", "cycles", "warmup")

#: metric name -> (record path, higher-is-better). Latency regressions are
#: increases; throughput regressions are decreases.
GATED_METRICS: Dict[str, Tuple[Tuple[str, ...], bool]] = {
    "latency_mean": (("summary", "latency_mean"), False),
    "latency_p99": (("summary", "latency_p99"), False),
    "throughput": (("summary", "throughput"), True),
}

SpecKey = Tuple[object, ...]


def record_key(record: Mapping[str, object]) -> SpecKey:
    return tuple(record.get(f) for f in KEY_FIELDS)


def _lookup(record: Mapping[str, object], path: Tuple[str, ...]) -> Optional[float]:
    node: object = record
    for part in path:
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def _power_paths(records: Sequence[Mapping[str, object]]) -> Dict[str, Tuple[str, ...]]:
    """Power-total metric paths present in any record of a group."""
    out: Dict[str, Tuple[str, ...]] = {}
    for record in records:
        power = record.get("power")
        if isinstance(power, Mapping):
            for cfg in power:
                out[f"power_{cfg}_total_w"] = ("power", str(cfg), "total_w")
    return out


@dataclass
class MetricDiff:
    """One metric's before/after comparison for one spec key."""

    metric: str
    a_mean: float
    b_mean: float
    #: Worst within-log spread (max - min over repeats) across both logs.
    noise: float
    n_a: int
    n_b: int
    higher_is_better: bool = False
    gated: bool = True

    @property
    def delta(self) -> float:
        return self.b_mean - self.a_mean

    @property
    def rel_delta(self) -> float:
        if self.a_mean == 0:
            return 0.0 if self.delta == 0 else float("inf")
        return self.delta / abs(self.a_mean)

    def is_regression(self, rel_threshold: float) -> bool:
        """Does this delta breach the gate?

        A regression must move in the bad direction, exceed the noise
        band, and exceed ``rel_threshold`` relative to the baseline.
        """
        if not self.gated:
            return False
        bad = -self.delta if self.higher_is_better else self.delta
        if bad <= self.noise:
            return False
        return abs(self.rel_delta) > rel_threshold

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "a": self.a_mean,
            "b": self.b_mean,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "noise": self.noise,
            "n_a": self.n_a,
            "n_b": self.n_b,
            "gated": self.gated,
        }


@dataclass
class KeyDiff:
    """All metric comparisons for one matched spec key."""

    key: SpecKey
    label: str
    digests_match: bool
    metrics: List[MetricDiff] = field(default_factory=list)

    def regressions(self, rel_threshold: float) -> List[MetricDiff]:
        return [m for m in self.metrics if m.is_regression(rel_threshold)]

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "key": dict(zip(KEY_FIELDS, self.key)),
            "label": self.label,
            "digests_match": self.digests_match,
            "metrics": [m.to_json_dict() for m in self.metrics],
        }


@dataclass
class LogDiff:
    """Full comparison of two run logs."""

    matched: List[KeyDiff]
    only_a: List[str]
    only_b: List[str]
    rel_threshold: float = 0.05

    def breaches(self) -> List[Tuple[KeyDiff, MetricDiff]]:
        out = []
        for kd in self.matched:
            for md in kd.regressions(self.rel_threshold):
                out.append((kd, md))
        return out

    @property
    def clean(self) -> bool:
        return not self.breaches()

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "rel_threshold": self.rel_threshold,
            "clean": self.clean,
            "matched": [k.to_json_dict() for k in self.matched],
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "breaches": [
                {"label": kd.label, **md.to_json_dict()}
                for kd, md in self.breaches()
            ],
        }


def _group(records: Sequence[Mapping[str, object]]):
    groups: Dict[SpecKey, List[Mapping[str, object]]] = {}
    for record in records:
        if "digest" not in record or "summary" not in record:
            continue  # malformed / foreign line
        groups.setdefault(record_key(record), []).append(record)
    return groups


def _stat(
    records: Sequence[Mapping[str, object]], path: Tuple[str, ...]
) -> Optional[Tuple[float, float, int]]:
    """(mean, spread, n) of one metric over a group's repeats."""
    values = [v for v in (_lookup(r, path) for r in records) if v is not None]
    if not values:
        return None
    return sum(values) / len(values), max(values) - min(values), len(values)


def diff_groups(
    groups_a: Dict[SpecKey, List[Mapping[str, object]]],
    groups_b: Dict[SpecKey, List[Mapping[str, object]]],
    rel_threshold: float = 0.05,
) -> LogDiff:
    matched: List[KeyDiff] = []
    for key in sorted(groups_a, key=str):
        if key not in groups_b:
            continue
        recs_a, recs_b = groups_a[key], groups_b[key]
        label = str(recs_a[0].get("label", key))
        digests_a = {r.get("digest") for r in recs_a}
        digests_b = {r.get("digest") for r in recs_b}
        paths = dict(GATED_METRICS)
        for name, path in _power_paths(list(recs_a) + list(recs_b)).items():
            paths[name] = (path, False)
        kd = KeyDiff(
            key=key, label=label, digests_match=digests_a == digests_b
        )
        for metric, (path, higher_better) in paths.items():
            stat_a = _stat(recs_a, path)
            stat_b = _stat(recs_b, path)
            if stat_a is None or stat_b is None:
                continue
            kd.metrics.append(
                MetricDiff(
                    metric=metric,
                    a_mean=stat_a[0],
                    b_mean=stat_b[0],
                    noise=max(stat_a[1], stat_b[1]),
                    n_a=stat_a[2],
                    n_b=stat_b[2],
                    higher_is_better=higher_better,
                )
            )
        matched.append(kd)
    only_a = [
        str(groups_a[k][0].get("label", k)) for k in sorted(groups_a, key=str)
        if k not in groups_b
    ]
    only_b = [
        str(groups_b[k][0].get("label", k)) for k in sorted(groups_b, key=str)
        if k not in groups_a
    ]
    return LogDiff(
        matched=matched, only_a=only_a, only_b=only_b,
        rel_threshold=rel_threshold,
    )


def diff_runlogs(path_a, path_b, rel_threshold: float = 0.05) -> LogDiff:
    """Diff two JSONL run logs on disk (see module docstring for rules)."""
    return diff_groups(
        _group(read_runlog(path_a)),
        _group(read_runlog(path_b)),
        rel_threshold=rel_threshold,
    )


def format_diff(diff: LogDiff) -> str:
    """Human-readable diff table for the CLI."""
    lines: List[str] = []
    if not diff.matched:
        lines.append("no matching run points between the two logs")
    for kd in diff.matched:
        tag = "digests match" if kd.digests_match else "digests differ"
        lines.append(f"{kd.label}  [{tag}]")
        for md in kd.metrics:
            flag = (
                "  << REGRESSION"
                if md.is_regression(diff.rel_threshold)
                else ""
            )
            noise = f" (noise band {md.noise:.4g})" if md.noise else ""
            lines.append(
                f"  {md.metric:<24} {md.a_mean:>12.4f} -> {md.b_mean:>12.4f}"
                f"  delta {md.delta:+.4f} ({md.rel_delta:+.2%})"
                f"{noise}{flag}"
            )
    for label in diff.only_a:
        lines.append(f"only in A: {label}")
    for label in diff.only_b:
        lines.append(f"only in B: {label}")
    n = len(diff.breaches())
    lines.append(
        "clean: no gated metric moved beyond noise + "
        f"{diff.rel_threshold:.0%} threshold"
        if diff.clean
        else f"{n} regression(s) beyond noise + {diff.rel_threshold:.0%} threshold"
    )
    return "\n".join(lines)
