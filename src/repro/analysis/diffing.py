"""Run-record diffing: did this change move the numbers, and by how much?

Compares two JSONL run logs (see :mod:`repro.runtime.records`) point by
point for CI gating and before/after studies:

- **Matching** -- records are grouped by *spec key* ``(topology, pattern,
  rate, cycles, warmup)``. The content digest cannot be the join key
  across commits (it folds in the code fingerprint, so it changes on
  every source edit by design); instead, digest equality per matched key
  is *reported* -- when digests agree the runs were bit-identical inputs
  and any metric delta is pure measurement noise.
- **Noise bands** -- repeated records under one key (repeated-seed or
  repeated-run entries in the same log) define a per-metric spread
  (max - min). A delta within the wider of the two logs' spreads is
  reported but never significant.
- **Gating** -- a delta is a *breach* when it exceeds the noise band
  AND the relative threshold (default 5%) on a gated metric.
  :func:`LogDiff.breaches` drives ``repro diff``'s exit status: two logs
  of identical-seed runs diff clean and exit 0; a real regression exits
  non-zero for CI.

Compared metrics: mean/p99 latency, accepted throughput, and per-config
power totals when both records carry them (v1 records without ``power``
simply skip that row). The simulator's self-profile (wall-clock speed) is
machine-dependent and intentionally **never** gated.

**Empty vs missing** -- a JSON ``null`` under a metric path is the
collector's explicit *n=0 sentinel* (a run that completed zero measured
packets), which is a different fact from the path being absent (older
record schema). Absent paths are skipped for compatibility; a null on
exactly one side of a matched key is an *empty-vs-populated mismatch* and
always gates as a regression -- a run that silently stopped delivering
packets must not diff clean just because there were no numbers to compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.records import read_runlog

#: Spec fields forming the cross-log join key. ``variant`` (the spec's
#: free-form ``tag``, absent/None on untagged runs) keeps study arms that
#: share every numeric field -- e.g. static vs adaptive control -- from
#: collapsing into one repeat group.
KEY_FIELDS = ("topology", "pattern", "rate", "cycles", "warmup", "variant")

#: metric name -> (record path, higher-is-better). Latency regressions are
#: increases; throughput regressions are decreases.
GATED_METRICS: Dict[str, Tuple[Tuple[str, ...], bool]] = {
    "latency_mean": (("summary", "latency_mean"), False),
    "latency_p99": (("summary", "latency_p99"), False),
    "throughput": (("summary", "throughput"), True),
}

#: metric name -> record path for *exact* gates: any difference at all is
#: a breach, with no direction, noise band or relative threshold. Used for
#: determinism fingerprints -- e.g. the control plane's decision-log CRC,
#: where a single-bit drift means the closed loop stopped being
#: reproducible even if every performance number still matches. Absent
#: from one or both logs (runs without a control plane, older schema) the
#: metric is skipped, like any other.
EXACT_METRICS: Dict[str, Tuple[str, ...]] = {
    "control_log_crc": ("summary", "control_log_crc"),
    # Spare-channel drain state machine: CRC of the reconfiguration
    # controller's canonical phase-transition log (two-phase draining
    # re-assignment). Present whenever a controller ran, open-loop or
    # managed; absent-side records skip the gate.
    "drain_log_crc": ("summary", "drain_log_crc"),
}

SpecKey = Tuple[object, ...]


def record_key(record: Mapping[str, object]) -> SpecKey:
    return tuple(record.get(f) for f in KEY_FIELDS)


#: Sentinel distinguishing "path absent from the record" from an explicit
#: JSON ``null`` (which :meth:`StatsCollector.summary` emits for empty
#: measurement windows). ``None`` is reserved for the latter.
_MISSING = object()


def _lookup(record: Mapping[str, object], path: Tuple[str, ...]) -> object:
    node: object = record
    for part in path:
        if not isinstance(node, Mapping) or part not in node:
            return _MISSING
        node = node[part]
    if node is None:
        return None
    return float(node) if isinstance(node, (int, float)) else _MISSING


def _power_paths(records: Sequence[Mapping[str, object]]) -> Dict[str, Tuple[str, ...]]:
    """Power-total metric paths present in any record of a group."""
    out: Dict[str, Tuple[str, ...]] = {}
    for record in records:
        power = record.get("power")
        if isinstance(power, Mapping):
            for cfg in power:
                out[f"power_{cfg}_total_w"] = ("power", str(cfg), "total_w")
    return out


@dataclass
class MetricDiff:
    """One metric's before/after comparison for one spec key."""

    metric: str
    a_mean: float
    b_mean: float
    #: Worst within-log spread (max - min over repeats) across both logs.
    noise: float
    n_a: int
    n_b: int
    higher_is_better: bool = False
    gated: bool = True
    #: Exactly one side carried the explicit n=0 sentinel (null metric)
    #: while the other had data. The empty side's mean is a 0.0
    #: placeholder, never NaN (records are JSON; NaN is not).
    empty_mismatch: bool = False
    #: Exact gate (:data:`EXACT_METRICS`): any value difference -- across
    #: sides or between repeats on one side -- breaches regardless of
    #: direction, noise or threshold.
    exact: bool = False

    @property
    def delta(self) -> float:
        return self.b_mean - self.a_mean

    @property
    def rel_delta(self) -> float:
        if self.a_mean == 0:
            return 0.0 if self.delta == 0 else float("inf")
        return self.delta / abs(self.a_mean)

    def is_regression(self, rel_threshold: float) -> bool:
        """Does this delta breach the gate?

        A regression must move in the bad direction, exceed the noise
        band, and exceed ``rel_threshold`` relative to the baseline.
        """
        if not self.gated:
            return False
        if self.empty_mismatch:
            # One side has zero samples where the other has data: a
            # qualitative change (a run stopped delivering packets, or
            # started) that no numeric threshold may wave through.
            return True
        if self.exact:
            return self.a_mean != self.b_mean or self.noise != 0
        bad = -self.delta if self.higher_is_better else self.delta
        if bad <= self.noise:
            return False
        return abs(self.rel_delta) > rel_threshold

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "a": self.a_mean,
            "b": self.b_mean,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "noise": self.noise,
            "n_a": self.n_a,
            "n_b": self.n_b,
            "gated": self.gated,
            "empty_mismatch": self.empty_mismatch,
            "exact": self.exact,
        }


@dataclass
class KeyDiff:
    """All metric comparisons for one matched spec key."""

    key: SpecKey
    label: str
    digests_match: bool
    metrics: List[MetricDiff] = field(default_factory=list)

    def regressions(self, rel_threshold: float) -> List[MetricDiff]:
        return [m for m in self.metrics if m.is_regression(rel_threshold)]

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "key": dict(zip(KEY_FIELDS, self.key)),
            "label": self.label,
            "digests_match": self.digests_match,
            "metrics": [m.to_json_dict() for m in self.metrics],
        }


@dataclass
class LogDiff:
    """Full comparison of two run logs."""

    matched: List[KeyDiff]
    only_a: List[str]
    only_b: List[str]
    rel_threshold: float = 0.05

    def breaches(self) -> List[Tuple[KeyDiff, MetricDiff]]:
        out = []
        for kd in self.matched:
            for md in kd.regressions(self.rel_threshold):
                out.append((kd, md))
        return out

    @property
    def clean(self) -> bool:
        return not self.breaches()

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "rel_threshold": self.rel_threshold,
            "clean": self.clean,
            "matched": [k.to_json_dict() for k in self.matched],
            "only_a": list(self.only_a),
            "only_b": list(self.only_b),
            "breaches": [
                {"label": kd.label, **md.to_json_dict()}
                for kd, md in self.breaches()
            ],
        }


def _group(records: Sequence[Mapping[str, object]]):
    groups: Dict[SpecKey, List[Mapping[str, object]]] = {}
    for record in records:
        if "digest" not in record or "summary" not in record:
            continue  # malformed / foreign line
        groups.setdefault(record_key(record), []).append(record)
    return groups


def _stat(
    records: Sequence[Mapping[str, object]], path: Tuple[str, ...]
) -> Optional[Tuple[float, float, int]]:
    """(mean, spread, n_valid) of one metric over a group's repeats.

    Returns ``None`` only when the path is absent from *every* record
    (pre-sentinel schema: the metric was never recorded -- skipped, not
    compared). Explicit JSON nulls (the collector's n=0 sentinel) count
    as present-but-empty: with no numeric values at all the mean and
    spread are 0.0 placeholders and ``n_valid`` is 0, which the caller
    turns into an empty-vs-populated mismatch.
    """
    found = [v for v in (_lookup(r, path) for r in records) if v is not _MISSING]
    if not found:
        return None
    values = [v for v in found if v is not None]
    if not values:
        return 0.0, 0.0, 0
    return sum(values) / len(values), max(values) - min(values), len(values)


def diff_groups(
    groups_a: Dict[SpecKey, List[Mapping[str, object]]],
    groups_b: Dict[SpecKey, List[Mapping[str, object]]],
    rel_threshold: float = 0.05,
) -> LogDiff:
    matched: List[KeyDiff] = []
    for key in sorted(groups_a, key=str):
        if key not in groups_b:
            continue
        recs_a, recs_b = groups_a[key], groups_b[key]
        label = str(recs_a[0].get("label", key))
        digests_a = {r.get("digest") for r in recs_a}
        digests_b = {r.get("digest") for r in recs_b}
        paths: Dict[str, Tuple[Tuple[str, ...], bool, bool]] = {
            name: (path, higher, False)
            for name, (path, higher) in GATED_METRICS.items()
        }
        for name, path in _power_paths(list(recs_a) + list(recs_b)).items():
            paths[name] = (path, False, False)
        for name, path in EXACT_METRICS.items():
            paths[name] = (path, False, True)
        kd = KeyDiff(
            key=key, label=label, digests_match=digests_a == digests_b
        )
        for metric, (path, higher_better, exact) in paths.items():
            stat_a = _stat(recs_a, path)
            stat_b = _stat(recs_b, path)
            if stat_a is None or stat_b is None:
                continue  # metric absent from a side (old schema): skip
            empty_a, empty_b = stat_a[2] == 0, stat_b[2] == 0
            if empty_a and empty_b:
                continue  # n=0 sentinel on both sides: nothing to compare
            kd.metrics.append(
                MetricDiff(
                    metric=metric,
                    a_mean=stat_a[0],
                    b_mean=stat_b[0],
                    noise=max(stat_a[1], stat_b[1]),
                    n_a=stat_a[2],
                    n_b=stat_b[2],
                    higher_is_better=higher_better,
                    empty_mismatch=empty_a != empty_b,
                    exact=exact,
                )
            )
        matched.append(kd)
    only_a = [
        str(groups_a[k][0].get("label", k)) for k in sorted(groups_a, key=str)
        if k not in groups_b
    ]
    only_b = [
        str(groups_b[k][0].get("label", k)) for k in sorted(groups_b, key=str)
        if k not in groups_a
    ]
    return LogDiff(
        matched=matched, only_a=only_a, only_b=only_b,
        rel_threshold=rel_threshold,
    )


def diff_runlogs(path_a, path_b, rel_threshold: float = 0.05) -> LogDiff:
    """Diff two JSONL run logs on disk (see module docstring for rules)."""
    return diff_groups(
        _group(read_runlog(path_a)),
        _group(read_runlog(path_b)),
        rel_threshold=rel_threshold,
    )


def format_diff(diff: LogDiff) -> str:
    """Human-readable diff table for the CLI."""
    lines: List[str] = []
    if not diff.matched:
        lines.append("no matching run points between the two logs")
    for kd in diff.matched:
        tag = "digests match" if kd.digests_match else "digests differ"
        lines.append(f"{kd.label}  [{tag}]")
        for md in kd.metrics:
            if md.empty_mismatch:
                side = "A" if md.n_a == 0 else "B"
                lines.append(
                    f"  {md.metric:<24} EMPTY on side {side}"
                    f" (n_a={md.n_a}, n_b={md.n_b})  << REGRESSION"
                )
                continue
            flag = (
                "  << REGRESSION"
                if md.is_regression(diff.rel_threshold)
                else ""
            )
            noise = f" (noise band {md.noise:.4g})" if md.noise else ""
            exact = " [exact]" if md.exact else ""
            lines.append(
                f"  {md.metric:<24} {md.a_mean:>12.4f} -> {md.b_mean:>12.4f}"
                f"  delta {md.delta:+.4f} ({md.rel_delta:+.2%})"
                f"{noise}{exact}{flag}"
            )
    for label in diff.only_a:
        lines.append(f"only in A: {label}")
    for label in diff.only_b:
        lines.append(f"only in B: {label}")
    n = len(diff.breaches())
    lines.append(
        "clean: no gated metric moved beyond noise + "
        f"{diff.rel_threshold:.0%} threshold"
        if diff.clean
        else f"{n} regression(s) beyond noise + {diff.rel_threshold:.0%} threshold"
    )
    return "\n".join(lines)
