"""Per-resource utilisation accounting for finished runs.

Sec. V-B: "We measured the total number of packets sent and received to
evaluate the percentage of traffic that uses the wireless channels." This
module generalises that measurement: per-channel and per-waveguide
utilisation, traffic share by link technology, gateway load balance, and a
bottleneck ranking -- the quantities an architect reads before moving a
gateway or re-assigning a channel (and what the reconfiguration controller
automates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.noc.simulator import Simulator
from repro.topologies.base import BuiltTopology


@dataclass
class ChannelUtilisation:
    """One wireless channel / photonic waveguide's measured load."""

    name: str
    kind: str
    flits: int
    utilisation: float  # flits * cycles_per_flit / cycles
    channel_id: Optional[int] = None


@dataclass
class UtilisationReport:
    """Aggregated utilisation view of a finished run."""

    cycles: int
    flits_by_kind: Dict[str, int] = field(default_factory=dict)
    channels: List[ChannelUtilisation] = field(default_factory=list)
    gateway_loads: Dict[str, int] = field(default_factory=dict)

    @property
    def wireless_traffic_share(self) -> float:
        """Fraction of all link flit-traversals on wireless channels
        (the paper's Fig. 5 measurement)."""
        total = sum(self.flits_by_kind.values())
        if total == 0:
            return float("nan")
        return self.flits_by_kind.get("wireless", 0) / total

    def hottest(self, n: int = 5, kind: Optional[str] = None) -> List[ChannelUtilisation]:
        pool = [c for c in self.channels if kind is None or c.kind == kind]
        return sorted(pool, key=lambda c: c.utilisation, reverse=True)[:n]

    def load_balance_cv(self, kind: str) -> float:
        """Coefficient of variation of utilisation within a link class
        (0 = perfectly balanced)."""
        utils = np.array([c.utilisation for c in self.channels if c.kind == kind])
        if utils.size == 0 or utils.mean() == 0:
            return float("nan")
        return float(utils.std() / utils.mean())


def utilisation_report(built: BuiltTopology, sim: Simulator) -> UtilisationReport:
    """Build the utilisation view from link/medium counters.

    Shared media (waveguides, SWMR channels) report once per medium;
    point-to-point links report individually. Ejection links are excluded
    (they mirror delivered traffic, not network load).
    """
    if sim.now <= 0:
        raise ValueError("simulation has not run")
    net = built.network
    report = UtilisationReport(cycles=sim.now)

    seen_media = set()
    for link in net.links:
        if link.name.startswith("eject"):
            continue
        report.flits_by_kind[link.kind] = (
            report.flits_by_kind.get(link.kind, 0) + link.flits_carried
        )
        if link.medium is not None:
            if id(link.medium) in seen_media:
                continue
            seen_media.add(id(link.medium))
            m = link.medium
            report.channels.append(
                ChannelUtilisation(
                    name=m.name,
                    kind=m.kind,
                    flits=m.flits_carried,
                    utilisation=m.flits_carried * link.cycles_per_flit / sim.now,
                    channel_id=link.channel_id,
                )
            )
        else:
            report.channels.append(
                ChannelUtilisation(
                    name=link.name,
                    kind=link.kind,
                    flits=link.flits_carried,
                    utilisation=link.flits_carried * link.cycles_per_flit / sim.now,
                    channel_id=link.channel_id,
                )
            )

    for router in net.routers:
        gateway = router.attrs.get("gateway")
        if gateway:
            label = f"{gateway}{router.attrs.get('cluster', '?')}"
            if "group" in router.attrs:
                label = f"g{router.attrs['group']}." + label
            report.gateway_loads[label] = (
                router.buffer_writes + router.buffer_reads
            )
    return report


def wireless_channel_table_rows(
    built: BuiltTopology, sim: Simulator
) -> List[Tuple[int, str, int, float]]:
    """Per-channel rows (id, name, flits, utilisation) for bench output."""
    report = utilisation_report(built, sim)
    rows = [
        (c.channel_id or 0, c.name, c.flits, round(c.utilisation, 4))
        for c in report.channels
        if c.kind == "wireless"
    ]
    return sorted(rows)
