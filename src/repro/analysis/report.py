"""Markdown run-report generation.

``python -m repro report -o report.md`` regenerates a fresh, dated
paper-vs-measured report from live runs -- the automated counterpart of the
hand-annotated EXPERIMENTS.md. Useful when model parameters are changed:
one command re-derives every artifact and renders them with their notes.
"""

from __future__ import annotations

import inspect
import io
import time
from typing import Dict, Iterable, List, Optional

from repro.analysis.experiments import EXPERIMENTS, ExperimentResult

#: Paper-section anchor printed above each artifact.
ARTIFACT_CONTEXT: Dict[str, str] = {
    "table1": "Table I — OWN-256 wireless connections (Sec. III-A)",
    "table2": "Table II — OWN-1024 channel allocation (Sec. III-B)",
    "table3": "Table III — wireless channel plan (Sec. IV)",
    "table4": "Table IV — WiNoC configurations (Sec. V-B)",
    "fig3": "Fig. 3 — OOK link budget (Sec. IV-A)",
    "fig4": "Fig. 4 — transceiver building blocks (Sec. IV-A)",
    "fig5": "Fig. 5 — average wireless link power (Sec. V-B)",
    "fig6": "Fig. 6 — 256-core power breakdown (Sec. V-B)",
    "fig7a": "Fig. 7(a) — throughput per pattern (Sec. V-B)",
    "fig7bc": "Fig. 7(b,c) — latency vs load (Sec. V-B)",
    "fig8a": "Fig. 8(a) — 1024-core throughput (Sec. V-C)",
    "fig8b": "Fig. 8(b) — 1024-core power (Sec. V-C)",
    "ablation_token": "Ablation — token arbitration cost (Sec. V-B)",
    "ablation_antenna": "Ablation — antenna placement (Sec. III-A)",
    "ablation_sdm": "Ablation — SDM frequency reuse (Sec. V-B)",
    "ablation_radix": "Ablation — radix vs hops (Sec. V-C)",
    "study_area": "Study — silicon area scaling",
    "study_thermal": "Study — steady-state thermals",
    "study_components": "Study — photonic component scaling (Sec. I)",
    "study_reconfig": "Study — reconfiguration channels (Sec. IV)",
    "study_faults": "Study — wireless channel failures",
    "study_bursty": "Study — bursty traffic",
    "study_degradation": "Study — runtime faults, retransmission, failover",
    "study_adaptive": "Study — closed-loop control vs static failover",
    "study_workloads": "Study — application workloads scenario matrix",
}


def _render_markdown(result: ExperimentResult) -> str:
    """One experiment as a GitHub-flavoured markdown table + notes."""
    out = io.StringIO()
    headers = [str(h) for h in result.headers]
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in result.rows:
        cells = [
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ]
        out.write("| " + " | ".join(cells) + " |\n")
    if result.notes:
        out.write("\n")
        for k, v in result.notes.items():
            if isinstance(v, float):
                v = f"{v:.3f}"
            out.write(f"- `{k}`: {v}\n")
    return out.getvalue()


def generate_report(
    only: Optional[Iterable[str]] = None,
    quick: bool = True,
    title: str = "OWN reproduction — generated run report",
) -> str:
    """Run the selected experiments and render a markdown report.

    Parameters
    ----------
    only:
        Experiment ids to include (default: all registered).
    quick:
        Use short simulation windows (recommended; the full windows are for
        EXPERIMENTS.md regeneration).

    Raises
    ------
    KeyError
        For unknown experiment ids.
    """
    wanted: List[str] = list(only) if only else list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    out = io.StringIO()
    out.write(f"# {title}\n\n")
    out.write(f"Mode: {'quick' if quick else 'full'} windows. ")
    out.write("Regenerate with `python -m repro report`.\n\n")
    for key in wanted:
        runner = EXPERIMENTS[key]
        kwargs = {}
        if quick and "quick" in inspect.signature(runner).parameters:
            kwargs["quick"] = True
        t0 = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - t0
        out.write(f"## {ARTIFACT_CONTEXT.get(key, key)}\n\n")
        out.write(f"*experiment `{key}`, {elapsed:.1f}s*\n\n")
        out.write(_render_markdown(result))
        out.write("\n")
    return out.getvalue()
