"""repro: reproduction of "Scalable Power-Efficient Kilo-Core
Photonic-Wireless NoC Architectures" (Kodi et al., IPDPS 2018).

Public API tour
---------------

Build a network, drive traffic, account power::

    from repro import build_own256, Simulator, SyntheticTraffic, measure_power

    built = build_own256()
    sim = Simulator(built.network,
                    traffic=SyntheticTraffic(256, "UN", 0.03, 4, seed=1))
    sim.run(2000)
    print(sim.summary())
    print(measure_power(built, sim, config_id=4, scenario=1).as_dict())

Subpackages:

* :mod:`repro.noc`        -- the cycle-level NoC simulator substrate,
* :mod:`repro.core`       -- the OWN architecture (the paper's contribution),
* :mod:`repro.topologies` -- CMESH / wCMESH / OptXB / p-Clos baselines,
* :mod:`repro.traffic`    -- synthetic patterns, generators, traces,
* :mod:`repro.rf`         -- OOK transceiver circuit models (Figs. 3-4),
* :mod:`repro.power`      -- DSENT-style / photonic / wireless power models,
* :mod:`repro.photonics`  -- component inventories and loss budgets,
* :mod:`repro.analysis`   -- sweeps, bisection accounting, experiment
  runners for every table and figure.
"""

__version__ = "1.0.0"

from repro.noc import (
    Network,
    Packet,
    Simulator,
    SimulationDeadlock,
    Router,
    RoutingFunction,
)
from repro.core import build_own256, build_own1024, OWN256_DIMS, OWN1024_DIMS, OwnDims
from repro.topologies import (
    BuiltTopology,
    build_cmesh,
    build_wcmesh,
    build_optxb,
    build_pclos,
)
from repro.traffic import SyntheticTraffic, ScriptedTraffic, TrafficPattern, TrafficTrace
from repro.power import measure_power, PowerModel, PowerBreakdown, SCENARIOS, CONFIGURATIONS
from repro.analysis import EXPERIMENTS, load_sweep, ExperimentResult

__all__ = [
    "__version__",
    "Network",
    "Packet",
    "Simulator",
    "SimulationDeadlock",
    "Router",
    "RoutingFunction",
    "build_own256",
    "build_own1024",
    "OWN256_DIMS",
    "OWN1024_DIMS",
    "OwnDims",
    "BuiltTopology",
    "build_cmesh",
    "build_wcmesh",
    "build_optxb",
    "build_pclos",
    "SyntheticTraffic",
    "ScriptedTraffic",
    "TrafficPattern",
    "TrafficTrace",
    "measure_power",
    "PowerModel",
    "PowerBreakdown",
    "SCENARIOS",
    "CONFIGURATIONS",
    "EXPERIMENTS",
    "load_sweep",
    "ExperimentResult",
]
