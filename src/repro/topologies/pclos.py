"""p-Clos: the silicon-photonic Clos baseline (Joshi et al., NOCS 2009).

"For the p-Clos architecture, we assumed that the maximum number of hops is
two i.e. all concentrated nodes are connected to one level of switches
before they are connected back to the router." (Sec. V-A)

We realise this as a folded two-hop Clos: every node router writes into the
MWSR *up-waveguide* of one of ``n_middles`` middle switches; every middle
switch writes into the MWSR *down-waveguide* of every node router. A packet
takes node -> middle -> node (2 hops, matching the paper), and both
waveguide classes use token arbitration like the crossbar. The extra middle
switches are exactly why "p-Clos also adds power due to the increase in the
number of routers" (Sec. V-C).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.noc.links import SharedMedium
from repro.noc.network import Network
from repro.noc.router import Router, RoutingFunction
from repro.topologies.base import (
    BuiltTopology,
    CONCENTRATION,
    attach_concentrated_cores,
    die_edge_for,
    grid_position,
    grid_side,
    validate_core_count,
)


class PClosRouting(RoutingFunction):
    """node -> middle (hash-balanced) -> node."""

    def __init__(
        self,
        net: Network,
        n_nodes: int,
        n_middles: int,
        up_port: Dict[Tuple[int, int], int],
        down_port: Dict[Tuple[int, int], int],
    ):
        self.net = net
        self.n_nodes = n_nodes
        self.n_middles = n_middles
        self.up_port = up_port  # (node_rid, middle_rid) -> out_port
        self.down_port = down_port  # (middle_rid, node_rid) -> out_port

    def compute(self, router: Router, packet) -> int:
        dst_rid = self.net.core_router[packet.dst_core]
        rid = router.rid
        if rid < self.n_nodes:
            if dst_rid == rid:
                return self.net.core_eject_port[packet.dst_core]
            # Deterministic middle selection. A multiplicative mixing hash
            # spreads structured permutations (bit-reversal pairs all share
            # low-bit patterns, so a plain (src+dst) mod m collapses onto a
            # few middles).
            mixed = (rid * 2654435761 + dst_rid * 40503) & 0xFFFFFFFF
            middle = self.n_nodes + (mixed >> 8) % self.n_middles
            return self.up_port[(rid, middle)]
        # At a middle switch: descend to the destination node router.
        return self.down_port[(rid, dst_rid)]


def build_pclos(
    n_cores: int = 256,
    n_middles: int = 16,
    num_vcs: int = 4,
    vc_depth: int = 8,
    token_latency: int = 2,
    waveguide_latency: int = 2,
) -> BuiltTopology:
    """Build the photonic Clos baseline.

    ``n_middles`` defaults to 16 so that the middle-stage capacity matches
    the bisection-equalised comparison (16 up-waveguides at one flit/cycle
    carry the same cut bandwidth as OWN's wireless plan; see
    ``repro.analysis.bisection``); its token overhead is what makes p-Clos
    "saturate 10% earlier than OWN" (Sec. V-B).
    """
    n_nodes = validate_core_count(n_cores)
    side = grid_side(n_nodes)
    die = die_edge_for(n_cores)
    net = Network(f"pclos{n_cores}", n_cores, num_vcs=num_vcs, vc_depth=vc_depth)

    for rid in range(n_nodes):
        net.add_router(position_mm=grid_position(rid, side, die), attrs={"stage": "node"})
    # Middle switches placed along the die centre line. Our flattened model
    # gives each middle one bus input and n_nodes bus outputs; the reference
    # design (Joshi et al.) builds radix-16 middle switches, which is what
    # the power model should charge for.
    for m in range(n_middles):
        x = (m + 0.5) * die / n_middles
        net.add_router(
            position_mm=(x, die / 2), attrs={"stage": "middle", "paper_radix": 16}
        )
    for rid in range(n_nodes):
        attach_concentrated_cores(net, rid, rid * CONCENTRATION)

    # Global waveguides span about half the die perimeter on average.
    wg_mm = die

    up_port: Dict[Tuple[int, int], int] = {}
    down_port: Dict[Tuple[int, int], int] = {}

    for m in range(n_middles):
        middle = n_nodes + m
        medium = SharedMedium(
            f"up{m}", kind="photonic", arb_latency=token_latency, multicast_degree=1
        )
        ports = net.connect_bus(
            list(range(n_nodes)),
            middle,
            kind="photonic",
            medium=medium,
            latency=waveguide_latency,
            length_mm=wg_mm,
        )
        for w, port in ports.items():
            up_port[(w, middle)] = port

    for node in range(n_nodes):
        medium = SharedMedium(
            f"down{node}", kind="photonic", arb_latency=token_latency, multicast_degree=1
        )
        ports = net.connect_bus(
            [n_nodes + m for m in range(n_middles)],
            node,
            kind="photonic",
            medium=medium,
            latency=waveguide_latency,
            length_mm=wg_mm,
        )
        for w, port in ports.items():
            down_port[(w, node)] = port

    net.set_routing(PClosRouting(net, n_nodes, n_middles, up_port, down_port))
    net.finalize()
    return BuiltTopology(
        network=net,
        kind="pclos",
        params={"n_cores": n_cores, "n_middles": n_middles},
        notes={
            "diameter_hops": 2,
            "extra_routers": n_middles,
        },
    )
