"""OptXB: the Corona-style all-optical crossbar baseline.

"For the photonic crossbar (OptXB), we assume the 4 cores are concentrated
together and the maximum diameter is one. ... We implement MWSR with token
arbitration with a router radix of 67 (63 for the crossbar and 4 cores)."
(Sec. V-A)

Every router owns a *home waveguide* -- an MWSR bus all other routers write
to, arbitrated by a circulating token. A packet takes exactly one network
hop: source router -> destination router's home waveguide -> eject. The
token transfer "consumes a few extra cycles" (Sec. V-B), captured by the
medium's ``arb_latency``.

The architecture is the paper's power-efficiency winner at 256 cores but
its component count is the scalability objection: Sec. I counts ~7.3 M
photodetectors at 1024x1024 (see ``repro.photonics.components``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.noc.links import SharedMedium
from repro.noc.network import Network
from repro.noc.router import Router, RoutingFunction
from repro.topologies.base import (
    BuiltTopology,
    CONCENTRATION,
    attach_concentrated_cores,
    die_edge_for,
    grid_position,
    grid_side,
    validate_core_count,
)


class OptXBRouting(RoutingFunction):
    """Single-hop crossbar routing: write into the destination's waveguide."""

    def __init__(self, net: Network, bus_port: Dict[Tuple[int, int], int]):
        self.net = net
        self.bus_port = bus_port  # (writer_rid, reader_rid) -> out_port

    def compute(self, router: Router, packet) -> int:
        dst_rid = self.net.core_router[packet.dst_core]
        if dst_rid == router.rid:
            return self.net.core_eject_port[packet.dst_core]
        return self.bus_port[(router.rid, dst_rid)]


def build_optxb(
    n_cores: int = 256,
    num_vcs: int = 4,
    vc_depth: int = 8,
    token_latency: int = 10,
    waveguide_latency: int = 2,
    cycles_per_flit: int = 4,
) -> BuiltTopology:
    """Build the optical-crossbar baseline.

    Parameters
    ----------
    token_latency:
        Cycles for the token to reach a granted writer ("a few extra
        cycles", Sec. V-B). A circulating optical token over the 64-stop
        ring averages ~half the ring at a few stops per cycle, hence the
        default of 10. The token ablation bench sweeps this.
    waveguide_latency:
        Light propagation along the snake waveguide, in cycles.
    cycles_per_flit:
        Bisection equalisation (Sec. V-A): OptXB's cut counts 32 directed
        home waveguides vs OWN's 8 wireless channels, so each waveguide is
        slowed 4x to compare at equal bisection bandwidth. Pass 1 for the
        raw network.
    """
    n_routers = validate_core_count(n_cores)
    side = grid_side(n_routers)
    die = die_edge_for(n_cores)
    net = Network(f"optxb{n_cores}", n_cores, num_vcs=num_vcs, vc_depth=vc_depth)

    for rid in range(n_routers):
        net.add_router(position_mm=grid_position(rid, side, die), attrs={})
    for rid in range(n_routers):
        attach_concentrated_cores(net, rid, rid * CONCENTRATION)

    # Snake waveguide length: it visits every router once (~n_routers *
    # pitch); the loss/laser model consumes this.
    snake_mm = die / side * n_routers

    bus_port: Dict[Tuple[int, int], int] = {}
    for reader in range(n_routers):
        medium = SharedMedium(
            f"wg{reader}", kind="photonic", arb_latency=token_latency, multicast_degree=1
        )
        writers = [w for w in range(n_routers) if w != reader]
        ports = net.connect_bus(
            writers,
            reader,
            kind="photonic",
            medium=medium,
            latency=waveguide_latency,
            cycles_per_flit=cycles_per_flit,
            length_mm=snake_mm,
        )
        for w, port in ports.items():
            bus_port[(w, reader)] = port

    net.set_routing(OptXBRouting(net, bus_port))
    net.finalize()
    return BuiltTopology(
        network=net,
        kind="optxb",
        params={
            "n_cores": n_cores,
            "token_latency": token_latency,
            "snake_mm": snake_mm,
        },
        notes={
            "max_radix": (n_routers - 1) + CONCENTRATION,
            "diameter_hops": 1,
        },
    )
