"""Baseline architectures the paper compares OWN against (Sec. V).

* :func:`build_cmesh`  -- pure-electrical concentrated mesh,
* :func:`build_wcmesh` -- WCube-style wired/wireless hybrid,
* :func:`build_optxb`  -- Corona-style all-optical token crossbar,
* :func:`build_pclos`  -- silicon-photonic folded Clos.

OWN itself lives in :mod:`repro.core` (it is the paper's contribution, not
a baseline).
"""

from repro.topologies.base import (
    BuiltTopology,
    CONCENTRATION,
    DIE_EDGE_256_MM,
    attach_concentrated_cores,
    die_edge_for,
    grid_position,
    grid_side,
    validate_core_count,
)
from repro.topologies.cmesh import build_cmesh, CMeshRouting
from repro.topologies.wcmesh import build_wcmesh, WCMeshRouting
from repro.topologies.optxb import build_optxb, OptXBRouting
from repro.topologies.pclos import build_pclos, PClosRouting

__all__ = [
    "BuiltTopology",
    "CONCENTRATION",
    "DIE_EDGE_256_MM",
    "attach_concentrated_cores",
    "die_edge_for",
    "grid_position",
    "grid_side",
    "validate_core_count",
    "build_cmesh",
    "CMeshRouting",
    "build_wcmesh",
    "WCMeshRouting",
    "build_optxb",
    "OptXBRouting",
    "build_pclos",
    "PClosRouting",
]
