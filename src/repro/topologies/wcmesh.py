"""Wireless-CMESH: the WCube-style hybrid wired/wireless baseline.

"Each wireless cluster has 4 routers connected by an electrical crossbar,
and one router is a wireless router and 16 of the wireless clusters make up
the 256-core chip. Wireless routing is implemented as XY DOR to prevent
deadlocks and the maximum hop count is sqrt(n) where n is the number of
routers. The radix of the wireless-CMESH is 11 (3 electrical, 4 wireless
x-y and 4 cores)." (Sec. V-A)

Wireless links here are dedicated point-to-point channels between adjacent
wireless routers (FDM/SDM per WCube), so they need no token medium; they do
pay wireless energy-per-bit in the power model, and inter-cluster packets
navigate multiple wireless hops -- exactly the effect that makes wCMESH's
1024-core wireless power dominate in Fig. 8(b).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.noc.network import Network
from repro.noc.router import Router, RoutingFunction
from repro.topologies.base import (
    BuiltTopology,
    CONCENTRATION,
    attach_concentrated_cores,
    die_edge_for,
    grid_position,
    grid_side,
    validate_core_count,
)


class WCMeshRouting(RoutingFunction):
    """Intra-cluster electrical crossbar + inter-cluster wireless XY DOR."""

    def __init__(
        self,
        net: Network,
        side: int,
        cluster_side: int,
        elec_port: Dict[Tuple[int, int], int],
        wireless_port: Dict[Tuple[int, str], int],
        wireless_router: Dict[int, int],
    ):
        self.net = net
        self.side = side
        self.cluster_side = cluster_side
        self.elec_port = elec_port  # (rid, peer_rid) -> out_port
        self.wireless_port = wireless_port  # (wrid, direction) -> out_port
        self.wireless_router = wireless_router  # cluster_id -> rid

    def cluster_of(self, rid: int) -> int:
        x, y = rid % self.side, rid // self.side
        return (y // 2) * self.cluster_side + (x // 2)

    def compute(self, router: Router, packet) -> int:
        dst_rid = self.net.core_router[packet.dst_core]
        rid = router.rid
        if dst_rid == rid:
            return self.net.core_eject_port[packet.dst_core]
        src_cluster = self.cluster_of(rid)
        dst_cluster = self.cluster_of(dst_rid)
        if src_cluster == dst_cluster:
            return self.elec_port[(rid, dst_rid)]
        wrid = self.wireless_router[src_cluster]
        if rid != wrid:
            # Hop to the cluster's wireless router over the local crossbar.
            return self.elec_port[(rid, wrid)]
        # Wireless XY DOR over the cluster grid.
        cs = self.cluster_side
        cx, cy = src_cluster % cs, src_cluster // cs
        dx, dy = dst_cluster % cs, dst_cluster // cs
        if cx != dx:
            direction = "E" if dx > cx else "W"
        else:
            direction = "S" if dy > cy else "N"
        return self.wireless_port[(rid, direction)]


def build_wcmesh(
    n_cores: int = 256,
    num_vcs: int = 4,
    vc_depth: int = 8,
    wireless_cycles_per_flit: int = 2,
) -> BuiltTopology:
    """Build the wireless-CMESH baseline.

    ``wireless_cycles_per_flit`` equalises the wireless *spectrum budget*
    with OWN: the 4x4 wireless grid has 48 directed links but only the same
    16 Table III channels to share (FDM + SDM reuse recovers roughly a
    third), so each grid link runs at half a flit per cycle. Pass 1 for an
    idealised fully-provisioned grid.
    """
    n_routers = validate_core_count(n_cores)
    side = grid_side(n_routers)
    if side % 2 != 0:
        raise ValueError(f"wcmesh needs an even router-grid side, got {side}")
    cluster_side = side // 2
    die = die_edge_for(n_cores)
    net = Network(f"wcmesh{n_cores}", n_cores, num_vcs=num_vcs, vc_depth=vc_depth)

    for rid in range(n_routers):
        net.add_router(position_mm=grid_position(rid, side, die), attrs={})
    for rid in range(n_routers):
        attach_concentrated_cores(net, rid, rid * CONCENTRATION)

    def cluster_members(cluster: int) -> list:
        cx, cy = cluster % cluster_side, cluster // cluster_side
        return [
            (2 * cy + j) * side + (2 * cx + i) for j in range(2) for i in range(2)
        ]

    n_clusters = cluster_side * cluster_side
    elec_port: Dict[Tuple[int, int], int] = {}
    wireless_router: Dict[int, int] = {}
    link_len = die / side

    for cluster in range(n_clusters):
        members = cluster_members(cluster)
        wireless_router[cluster] = members[0]  # top-left router hosts the antenna
        # Full electrical crossbar among the 4 cluster routers.
        for a in members:
            for b in members:
                if a != b:
                    out_port, _ = net.connect(
                        a, b, kind="electrical", latency=1, length_mm=link_len
                    )
                    elec_port[(a, b)] = out_port

    # Wireless XY grid among the clusters' wireless routers.
    wireless_port: Dict[Tuple[int, str], int] = {}
    cluster_pitch = die / cluster_side
    for cluster in range(n_clusters):
        cx, cy = cluster % cluster_side, cluster // cluster_side
        wrid = wireless_router[cluster]
        for direction, (nx, ny) in (
            ("E", (cx + 1, cy)),
            ("W", (cx - 1, cy)),
            ("S", (cx, cy + 1)),
            ("N", (cx, cy - 1)),
        ):
            if 0 <= nx < cluster_side and 0 <= ny < cluster_side:
                nbr_cluster = ny * cluster_side + nx
                out_port, _ = net.connect(
                    wrid,
                    wireless_router[nbr_cluster],
                    kind="wireless",
                    latency=1,
                    cycles_per_flit=wireless_cycles_per_flit,
                    length_mm=cluster_pitch,
                )
                wireless_port[(wrid, direction)] = out_port

    net.set_routing(
        WCMeshRouting(net, side, cluster_side, elec_port, wireless_port, wireless_router)
    )
    net.finalize()
    return BuiltTopology(
        network=net,
        kind="wcmesh",
        params={"n_cores": n_cores, "clusters": n_clusters, "cluster_pitch_mm": cluster_pitch},
        notes={
            "max_radix": 3 + 4 + CONCENTRATION,  # 3 electrical + 4 wireless + 4 cores
            "wireless_routers": n_clusters,
        },
    )
