"""Shared helpers for topology builders.

All compared architectures concentrate 4 cores per router (Sec. V-A), so
every builder uses :func:`attach_concentrated_cores`. Builders return a
:class:`BuiltTopology` bundling the network with the metadata the analysis
layer needs (geometry, technology inventory, bisection counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.noc.network import Network

#: Cores per router in every evaluated architecture (paper Sec. V-A).
CONCENTRATION = 4

#: Die edge for the 256-core floorplan [mm]: four 25x25 mm^2 clusters in a
#: 2.5D arrangement (Sec. III-A).
DIE_EDGE_256_MM = 50.0


@dataclass
class BuiltTopology:
    """A constructed network plus builder metadata.

    Attributes
    ----------
    network:
        The simulatable network.
    kind:
        Builder id (``cmesh``, ``wcmesh``, ``optxb``, ``pclos``, ``own``).
    params:
        Builder parameters for provenance (core count, radix, scenario...).
    notes:
        Free-form facts asserted by tests (e.g. expected max hop count).
    """

    network: Network
    kind: str
    params: Dict[str, object] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.network.name

    @property
    def n_cores(self) -> int:
        return self.network.n_cores


def grid_side(n_routers: int) -> int:
    """Side of the square router grid; errors on non-square counts."""
    side = int(round(math.sqrt(n_routers)))
    if side * side != n_routers:
        raise ValueError(f"router count {n_routers} is not a perfect square")
    return side


def grid_position(rid: int, side: int, die_edge_mm: float) -> Tuple[float, float]:
    """Physical (x, y) placement of router ``rid`` on a square die."""
    pitch = die_edge_mm / side
    x = (rid % side + 0.5) * pitch
    y = (rid // side + 0.5) * pitch
    return (x, y)


def attach_concentrated_cores(net: Network, rid: int, first_core: int) -> List[int]:
    """Attach ``CONCENTRATION`` consecutive cores starting at ``first_core``."""
    cores = list(range(first_core, first_core + CONCENTRATION))
    for core in cores:
        net.attach_core(core, rid)
    return cores


def validate_core_count(n_cores: int) -> int:
    """The evaluation uses 256 and 1024; any multiple of 4 squares works."""
    if n_cores % CONCENTRATION != 0:
        raise ValueError(f"core count {n_cores} not divisible by concentration {CONCENTRATION}")
    n_routers = n_cores // CONCENTRATION
    grid_side(n_routers)  # must form a square grid
    return n_routers


def die_edge_for(n_cores: int) -> float:
    """Die edge scaling: 50 mm at 256 cores, 100 mm at 1024 (4 chips of 4)."""
    return DIE_EDGE_256_MM * math.sqrt(n_cores / 256.0)
