"""CMESH: the concentrated 2-D mesh baseline.

"CMESH is designed with 4 cores per router with a maximum radix of 8 and XY
dimension-order routing (DOR) to prevent deadlocks. The maximum diameter is
2(sqrt(n) - 1) where n is the number of routers." (Sec. V-A)

Radix 8 = 4 mesh neighbours + 4 cores (edge routers have fewer mesh ports).
This is the pure-electrical architecture OWN is claimed to beat by >30 %
in power (Fig. 6 / conclusions).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.noc.network import Network
from repro.noc.router import Router, RoutingFunction
from repro.topologies.base import (
    BuiltTopology,
    CONCENTRATION,
    attach_concentrated_cores,
    die_edge_for,
    grid_position,
    grid_side,
    validate_core_count,
)


class CMeshRouting(RoutingFunction):
    """XY dimension-order routing over the router grid."""

    def __init__(self, net: Network, side: int, port_map: Dict[Tuple[int, str], int]):
        self.net = net
        self.side = side
        self.port_map = port_map  # (rid, direction) -> out_port

    def compute(self, router: Router, packet) -> int:
        dst_rid = self.net.core_router[packet.dst_core]
        rid = router.rid
        if dst_rid == rid:
            return self.net.core_eject_port[packet.dst_core]
        side = self.side
        x, y = rid % side, rid // side
        dx, dy = dst_rid % side, dst_rid // side
        if x != dx:  # X first
            direction = "E" if dx > x else "W"
        else:
            direction = "S" if dy > y else "N"
        return self.port_map[(rid, direction)]


def build_cmesh(
    n_cores: int = 256,
    num_vcs: int = 4,
    vc_depth: int = 8,
    cycles_per_flit: int = 3,
) -> BuiltTopology:
    """Build the concentrated-mesh baseline for ``n_cores`` cores.

    ``cycles_per_flit`` defaults to the bisection-equalised value: the
    paper compares all architectures at equal bisection bandwidth "by
    adding appropriate delay into the network" (Sec. V-A). CMESH's
    bisection cut counts 16 directed full-width links against OWN's 8
    wireless channels; slowing each mesh link 3x brings the cut bandwidths
    to parity at the saturation operating point (full derivation in
    ``repro.analysis.bisection``). Pass 1 for the raw network.
    """
    n_routers = validate_core_count(n_cores)
    side = grid_side(n_routers)
    die = die_edge_for(n_cores)
    net = Network(f"cmesh{n_cores}", n_cores, num_vcs=num_vcs, vc_depth=vc_depth)

    for rid in range(n_routers):
        net.add_router(
            position_mm=grid_position(rid, side, die),
            attrs={"x": rid % side, "y": rid // side},
        )
    for rid in range(n_routers):
        attach_concentrated_cores(net, rid, rid * CONCENTRATION)

    port_map: Dict[Tuple[int, str], int] = {}
    link_len = die / side
    for rid in range(n_routers):
        x, y = rid % side, rid // side
        for direction, (nx, ny) in (
            ("E", (x + 1, y)),
            ("W", (x - 1, y)),
            ("S", (x, y + 1)),
            ("N", (x, y - 1)),
        ):
            if 0 <= nx < side and 0 <= ny < side:
                nbr = ny * side + nx
                out_port, _ = net.connect(
                    rid,
                    nbr,
                    kind="electrical",
                    latency=1,
                    cycles_per_flit=cycles_per_flit,
                    length_mm=link_len,
                )
                port_map[(rid, direction)] = out_port

    net.set_routing(CMeshRouting(net, side, port_map))
    net.finalize()
    return BuiltTopology(
        network=net,
        kind="cmesh",
        params={"n_cores": n_cores, "side": side, "link_mm": link_len},
        notes={
            "max_radix": 4 + CONCENTRATION,
            "diameter_hops": 2 * (side - 1),
        },
    )
